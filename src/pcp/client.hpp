// Unprivileged client side of the PCP protocol (libpcp analogue).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pcp/pmcd.hpp"
#include "trace/recorder.hpp"

namespace papisim::pcp {

/// What an ordinary user links against: every operation is a synchronous
/// round-trip to the PMCD.  The client needs *no* privileges -- that is the
/// entire point of the PCP route on Summit -- but each fetch pays the
/// daemon-indirection latency, which is accounted on the virtual clock.
///
/// Resilience contract: every round-trip is deadline-bounded and retried
/// with exponential backoff (Pmcd::RpcOptions; tune via set_rpc_options).
/// Calls never hang and never leak std::future_error: on exhaustion they
/// throw Error(Status::Timeout), on daemon shutdown Error(Status::Shutdown),
/// on persistent admission shedding Error(Status::Overloaded), and on
/// persistent transient faults Error(Status::Internal).  Retries cost host
/// time only; the virtual clock is charged one round-trip per call.
///
/// Each PcpClient registers as a distinct tenant with the daemon, so
/// fair-share admission bounds one client's queue depth independently of the
/// others, and the seeded retry jitter desynchronizes per client identity.
class PcpClient {
 public:
  /// `creds` are the caller's credentials; they are deliberately unused for
  /// authorization (any user may talk to the PMCD).
  PcpClient(Pmcd& daemon, sim::Machine& machine, sim::Credentials creds)
      : daemon_(daemon),
        machine_(machine),
        creds_(creds),
        id_(daemon.register_client()) {}

  /// pmLookupName.
  std::optional<PmId> lookup(const std::string& name) {
    // Each RPC is the root of its own causal trace (even when issued under a
    // KernelRunner measurement trace): the daemon's attempt/queue/service
    // spans all hang off this context.
    const trace::ScopedTrace rpc(trace::ScopedTrace::Mode::Fresh);
    pay_round_trip();
    return daemon_.lookup(name, id_).pmid;
  }

  /// Traverse the namespace under a prefix.
  std::vector<std::string> names_under(const std::string& prefix) {
    const trace::ScopedTrace rpc(trace::ScopedTrace::Mode::Fresh);
    pay_round_trip();
    return daemon_.names_under(prefix, id_).names;
  }

  /// pmFetch for instance `cpu`.  One round trip regardless of metric count.
  FetchReply fetch(const std::vector<PmId>& pmids, std::uint32_t cpu) {
    const trace::ScopedTrace rpc(trace::ScopedTrace::Mode::Fresh);
    pay_round_trip();
    return daemon_.fetch(pmids, cpu, id_);
  }

  /// Tenant identity under which the daemon accounts this client.
  ClientId client_id() const { return id_; }

  /// Deadline/retry policy for this client's daemon connection.
  void set_rpc_options(const RpcOptions& opt) { daemon_.set_rpc_options(opt); }

  std::uint64_t round_trips() const { return round_trips_; }
  sim::Credentials credentials() const { return creds_; }
  sim::Machine& machine() { return machine_; }
  const sim::Machine& machine() const { return machine_; }

 private:
  void pay_round_trip() {
    ++round_trips_;
    machine_.advance(machine_.config().pcp_fetch_latency_ns);
  }

  Pmcd& daemon_;
  sim::Machine& machine_;
  sim::Credentials creds_;
  ClientId id_;
  std::uint64_t round_trips_ = 0;
};

}  // namespace papisim::pcp
