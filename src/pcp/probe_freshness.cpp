#include "pcp/probe_freshness.hpp"

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "pcp/pmcd.hpp"
#include "sim/machine.hpp"

namespace papisim::pcp {

namespace {

constexpr int kTrials = 6;

/// One freshness trial: prime the cache, advance the probed counter by one
/// line, optionally wait out the TTL, re-fetch.  Returns 1.0 when the
/// re-fetch observed the advance (fresh), 0.0 when it served the primed
/// value (stale).
double freshness_trial(sim::Machine& machine, Pmcd& daemon, PmId pmid,
                       std::chrono::microseconds settle) {
  const std::uint64_t primed = daemon.fetch({pmid}, 0).values[0];
  machine.memctrl(0).add_line(0, sim::MemDir::Read);
  if (settle.count() > 0) std::this_thread::sleep_for(settle);
  const std::uint64_t probed = daemon.fetch({pmid}, 0).values[0];
  return probed > primed ? 1.0 : 0.0;
}

probe::ProbePoint indicator_point(std::string label, double expected,
                                  double measured) {
  probe::ProbePoint p;
  p.label = std::move(label);
  p.unit = "fresh";
  p.expected = expected;
  p.lo = expected - 0.01;
  p.hi = expected + 0.01;
  p.measured = measured;
  p.pass = p.lo <= measured && measured <= p.hi;
  return p;
}

}  // namespace

probe::MechanismReport probe_fetch_cache_freshness() {
  const auto t0 = std::chrono::steady_clock::now();

  probe::MechanismReport report;
  report.mechanism = "pcp_cache_freshness";
  report.description =
      "PMCD fetch cache serves stale only within its TTL: a fetch beyond the "
      "TTL of a counter advance observes the new value";
  report.expected_effect = 1.0;
  report.min_effect = 0.5;

  sim::Machine machine(sim::MachineConfig::summit());
  machine.set_noise_enabled(false);

  // Must-NOT-fire arm: a TTL far longer than the trial, so the re-fetch is
  // contractually allowed -- and with a working cache, certain -- to be
  // served stale from the shard cache.
  PmcdOptions within_opt;
  within_opt.fetch_cache_ttl = std::chrono::microseconds(2'000'000);
  Pmcd within_daemon(machine, within_opt);
  const auto pmid = within_daemon
                        .pmns()
                        .lookup("perfevent.hwcounters.nest_mba0_imc."
                                "PM_MBA0_READ_BYTES")
                        .value();

  double within_fresh = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    const double fresh = freshness_trial(machine, within_daemon, pmid,
                                         std::chrono::microseconds(0));
    within_fresh += fresh;
    report.points.push_back(indicator_point(
        "within-ttl trial " + std::to_string(t), 0.0, fresh));
  }
  within_fresh /= kTrials;
  // The stale arm is only evidence if the cache actually engaged: a cache
  // that never serves a hit would look "correctly fresh" everywhere.
  report.points.push_back(indicator_point(
      "within-ttl arm served from cache", 1.0,
      within_daemon.cache_hits() > 0 ? 1.0 : 0.0));
  within_daemon.shutdown();

  // Must-fire arm: a tiny TTL, waited out after the counter advance.  The
  // re-fetch must miss the cache and observe the new value.
  PmcdOptions beyond_opt;
  beyond_opt.fetch_cache_ttl = std::chrono::microseconds(1'000);
  Pmcd beyond_daemon(machine, beyond_opt);

  double beyond_fresh = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    const double fresh = freshness_trial(machine, beyond_daemon, pmid,
                                         std::chrono::microseconds(5'000));
    beyond_fresh += fresh;
    report.points.push_back(indicator_point(
        "beyond-ttl trial " + std::to_string(t), 1.0, fresh));
  }
  beyond_fresh /= kTrials;
  beyond_daemon.shutdown();

  report.effect_size = beyond_fresh - within_fresh;
  report.line_touches = 2 * kTrials;  // one add_line per trial

  bool all_pass = true;
  for (const probe::ProbePoint& p : report.points) all_pass &= p.pass;
  if (all_pass && report.effect_size >= report.min_effect) {
    report.verdict = probe::Verdict::Confirm;
  } else if (report.effect_size < report.min_effect) {
    report.verdict = probe::Verdict::Refute;
  } else {
    report.verdict = probe::Verdict::Inconclusive;
  }

  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return report;
}

}  // namespace papisim::pcp
