// PMCD: the Performance Metrics Collector Daemon.
//
// On Summit the PMCD runs with the elevated privileges needed to program and
// read the nest PMU, and ordinary users query it over a socket.  Here the
// daemon is a real thread holding a root-credentialed NestPmu; clients talk
// to it through a mailbox protocol (request queue + per-request promise),
// which preserves the essential property the paper studies: user-space reads
// go through an indirection layer with a round-trip cost.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "nest/nest_pmu.hpp"
#include "pcp/pmns.hpp"
#include "sim/machine.hpp"

namespace papisim::pcp {

/// A fetch result: one value per requested pmid.
struct FetchReply {
  bool ok = false;
  std::string error;
  std::vector<std::uint64_t> values;
};

struct LookupReply {
  bool ok = false;
  std::optional<PmId> pmid;
};

struct NamesReply {
  std::vector<std::string> names;
};

/// The daemon.  Owns the PMNS and the privileged nest handle.
class Pmcd {
 public:
  /// Starts the daemon thread.  The daemon itself opens the nest PMU with
  /// root credentials -- this is the privilege boundary being modelled.
  explicit Pmcd(sim::Machine& machine);
  ~Pmcd();

  Pmcd(const Pmcd&) = delete;
  Pmcd& operator=(const Pmcd&) = delete;

  // --- client-side entry points (thread-safe, synchronous round-trips) ---

  /// pmLookupName.
  LookupReply lookup(const std::string& name);

  /// pmGetChildren / pmTraversePMNS over a prefix.
  NamesReply names_under(const std::string& prefix);

  /// pmFetch: read `pmids` for the instance (hardware thread) `cpu`.
  FetchReply fetch(const std::vector<PmId>& pmids, std::uint32_t cpu);

  const Pmns& pmns() const { return pmns_; }
  std::uint64_t requests_served() const { return requests_served_; }

 private:
  struct LookupReq {
    std::string name;
    std::promise<LookupReply> reply;
  };
  struct NamesReq {
    std::string prefix;
    std::promise<NamesReply> reply;
  };
  struct FetchReq {
    std::vector<PmId> pmids;
    std::uint32_t cpu = 0;
    std::promise<FetchReply> reply;
  };
  struct StopReq {};
  using Request = std::variant<LookupReq, NamesReq, FetchReq, StopReq>;

  void serve();
  void post(Request req);

  sim::Machine& machine_;
  Pmns pmns_;
  nest::NestPmu pmu_;  ///< opened with root credentials by the daemon

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  std::uint64_t requests_served_ = 0;
  std::thread thread_;
};

}  // namespace papisim::pcp
