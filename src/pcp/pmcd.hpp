// PMCD: the Performance Metrics Collector Daemon.
//
// On Summit the PMCD runs with the elevated privileges needed to program and
// read the nest PMU, and ordinary users query it over a socket.  Here the
// daemon is a real thread holding a root-credentialed NestPmu; clients talk
// to it through a mailbox protocol (request queue + per-request promise),
// which preserves the essential property the paper studies: user-space reads
// go through an indirection layer with a round-trip cost.
//
// Because the indirection layer is a failure domain of its own, the daemon
// carries a fault-injection and resilience model (DESIGN.md "PCP fault
// model"):
//  * A seeded FaultPlan can drop, delay, error, or crash-and-restart the
//    service thread per request, deterministically.
//  * Every client round-trip has a deadline (wait-with-timeout on the reply
//    future) and bounded retry with exponential backoff; exhaustion surfaces
//    Error(Status::Timeout), never an indefinite hang.
//  * Shutdown is drain-then-stop: requests accepted before shutdown are
//    served; requests racing with or arriving after shutdown fail fast with
//    Error(Status::Shutdown).  No promise is ever silently broken.
//  * A crashed service thread is restarted by a supervisor on the next post;
//    each incarnation re-baselines the monotonic counters (values restart
//    near zero, like a real collector that reports since-daemon-start), and
//    FetchReply::generation lets clients detect the discontinuity.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/error.hpp"
#include "nest/nest_pmu.hpp"
#include "pcp/fault.hpp"
#include "pcp/pmns.hpp"
#include "sim/machine.hpp"

namespace papisim::pcp {

/// A fetch result: one value per requested pmid.
struct FetchReply {
  bool ok = false;
  std::string error;
  std::vector<std::uint64_t> values;
  /// Daemon incarnation that served the fetch (starts at 1, +1 per crash
  /// restart).  A change means the counters re-baselined: absolute values
  /// restarted near zero and deltas against pre-restart snapshots are
  /// meaningless (see PcpComponent::read).
  std::uint64_t generation = 0;
};

struct LookupReply {
  bool ok = false;
  std::optional<PmId> pmid;
};

struct NamesReply {
  std::vector<std::string> names;
};

/// Client-side round-trip policy: per-attempt deadline, bounded retry with
/// exponential backoff.  Transient failures (timeout, injected error, daemon
/// crash) are retried; Status::Shutdown is terminal.
struct RpcOptions {
  std::chrono::milliseconds timeout{2000};   ///< per-attempt reply deadline
  int max_retries = 3;                       ///< attempts = max_retries + 1
  std::chrono::microseconds backoff_base{100};  ///< doubles per retry
};

/// The daemon.  Owns the PMNS and the privileged nest handle.
class Pmcd {
 public:
  /// Starts the daemon thread.  The daemon itself opens the nest PMU with
  /// root credentials -- this is the privilege boundary being modelled.
  explicit Pmcd(sim::Machine& machine);
  ~Pmcd();

  Pmcd(const Pmcd&) = delete;
  Pmcd& operator=(const Pmcd&) = delete;

  // --- client-side entry points (thread-safe, synchronous round-trips) ---
  // Each call is a deadline-bounded round trip with retry (RpcOptions).
  // @throws Error(Status::Timeout) when every attempt missed its deadline,
  // Error(Status::Shutdown) when the daemon is (or goes) down, and
  // Error(Status::Internal) when retries exhaust on transient faults.

  /// pmLookupName.
  LookupReply lookup(const std::string& name);

  /// pmGetChildren / pmTraversePMNS over a prefix.
  NamesReply names_under(const std::string& prefix);

  /// pmFetch: read `pmids` for the instance (hardware thread) `cpu`.
  FetchReply fetch(const std::vector<PmId>& pmids, std::uint32_t cpu);

  // --- lifecycle & fault injection ---

  /// Drain-then-stop: requests already accepted are served, then the service
  /// thread exits; posts racing with or following shutdown fail fast with
  /// Error(Status::Shutdown).  Idempotent; the destructor calls it.
  void shutdown();

  /// Install a fault schedule (thread-safe; applies to subsequent requests).
  void set_fault_plan(const FaultPlan& plan);

  /// Override the round-trip policy (thread-safe).
  void set_rpc_options(const RpcOptions& opt);

  const Pmns& pmns() const { return pmns_; }
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Current daemon incarnation (1 = never crashed).
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }
  std::uint64_t restarts() const { return generation() - 1; }
  std::uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }

 private:
  struct LookupReq {
    std::string name;
    std::promise<LookupReply> reply;
  };
  struct NamesReq {
    std::string prefix;
    std::promise<NamesReply> reply;
  };
  struct FetchReq {
    std::vector<PmId> pmids;
    std::uint32_t cpu = 0;
    std::promise<FetchReply> reply;
  };
  struct StopReq {};
  using Request = std::variant<LookupReq, NamesReq, FetchReq, StopReq>;

  void serve();

  /// Enqueue under the mailbox lock; restarts a crashed service thread
  /// first (the supervisor path).  False when shutting down -- the request
  /// was NOT enqueued and its promise is untouched.
  bool post(Request req);

  /// Join the crashed incarnation, re-baseline the counters, start the
  /// next incarnation.  Caller holds mu_.
  void restart_locked();

  /// Fail a pending request's promise with `err` (no-op for StopReq).
  static void fail_request(Request& req, const Error& err);

  /// Deadline + retry loop shared by lookup/names_under/fetch.
  template <typename Reply, typename MakeReq>
  Reply round_trip(MakeReq&& make_req);

  /// Serve one non-stop request (sets the promise).  `index` is the
  /// deterministic service index used for the fault roll.
  void serve_request(Request& req);

  std::size_t counter_slot(std::uint32_t socket, std::uint32_t channel,
                           nest::NestEventKind kind) const;

  sim::Machine& machine_;
  Pmns pmns_;
  nest::NestPmu pmu_;  ///< opened with root credentials by the daemon

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  /// Requests swallowed by Drop faults: parked (promise kept alive) so the
  /// client sees silence, not a broken promise; failed with Shutdown at
  /// drain time.
  std::vector<Request> dropped_;
  bool accepting_ = true;   ///< guarded by mu_
  bool crashed_ = false;    ///< guarded by mu_; true between crash and restart
  bool stop_posted_ = false;  ///< guarded by mu_
  FaultPlan plan_;          ///< guarded by mu_
  RpcOptions rpc_;          ///< guarded by mu_

  /// Per-counter baseline subtracted from raw PMU reads; rewritten only
  /// between incarnations (no service thread running), read lock-free by
  /// the service thread.
  std::vector<std::uint64_t> base_;

  /// Deterministic fault-roll index; touched only by the service thread
  /// (successive incarnations are ordered by join/create).
  std::uint64_t service_index_ = 0;

  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> generation_{1};
  std::atomic<std::uint64_t> faults_injected_{0};

  std::mutex lifecycle_mu_;  ///< serializes shutdown()/destructor joins
  std::thread thread_;
};

}  // namespace papisim::pcp
