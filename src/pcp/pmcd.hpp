// PMCD: the Performance Metrics Collector Daemon, as a multi-tenant service.
//
// On Summit the PMCD runs with the elevated privileges needed to program and
// read the nest PMU, and *every* user's counter reads on the node go through
// it.  Here the daemon is a sharded worker pool holding a root-credentialed
// NestPmu; clients talk to it through per-shard mailboxes (request queue +
// per-request promise), which preserves the essential property the paper
// studies: user-space reads go through an indirection layer with a
// round-trip cost -- now one that must stay bounded no matter how many
// tenants hammer it.
//
// Service model (DESIGN.md "Multi-tenant PMCD"):
//  * Sharded-by-namespace worker pool: requests hash (by metric name /
//    fetch key) onto N shards, each drained by its own service thread, so
//    independent namespaces never serialize behind one mailbox.
//  * Request coalescing: when a fetch is dequeued, identical fetches still
//    queued on the same shard are resolved from the same counter read (they
//    share the leader's reply and, for fault purposes, the leader's fate).
//  * Short-TTL fetch cache: a shard-local reply cache (off by default,
//    PmcdOptions::fetch_cache_ttl) absorbs fetch storms for hot keys;
//    entries are invalidated by daemon restarts (generation) and by TTL.
//  * Fair-share admission: per-tenant and total queue-depth bounds.  A
//    request over either bound is shed with the typed Status::Overloaded --
//    explicit backpressure, never queue collapse or an unbounded wait.
//
// Because the indirection layer is a failure domain of its own, the daemon
// carries a fault-injection and resilience model (DESIGN.md "PCP fault
// model"):
//  * A seeded FaultPlan can drop, delay, error, or crash-and-restart the
//    service per request, deterministically.
//  * Every client round-trip has a deadline (wait-with-timeout on the reply
//    future) and bounded retry with seeded-jitter exponential backoff
//    (pcp/backoff.hpp), so N clients failed by one crash do not re-arrive
//    in lockstep; exhaustion surfaces Error(Status::Timeout) (silence),
//    Error(Status::Internal) (persistent transient faults) or
//    Error(Status::Overloaded) (persistent shedding), never a hang.
//  * Shutdown is drain-then-stop: requests accepted before shutdown are
//    served; requests racing with or arriving after shutdown fail fast with
//    Error(Status::Shutdown).  No promise is ever silently broken.
//  * A crash kills the whole worker pool: the in-flight request and
//    everything queued behind it (on every shard) fail with typed errors,
//    then the supervisor restarts the pool on the next post.  Each
//    incarnation re-baselines the monotonic counters (values restart near
//    zero, like a real collector that reports since-daemon-start), and
//    FetchReply::generation lets clients detect the discontinuity.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "core/error.hpp"
#include "nest/nest_pmu.hpp"
#include "pcp/fault.hpp"
#include "pcp/pmns.hpp"
#include "sim/machine.hpp"
#include "trace/span.hpp"

namespace papisim::pcp {

/// Tenant identity for fair-share admission.  0 is the anonymous tenant
/// (direct daemon calls); PcpClient registers a distinct id per client.
using ClientId = std::uint64_t;

/// A fetch result: one value per requested pmid.
struct FetchReply {
  bool ok = false;
  std::string error;
  std::vector<std::uint64_t> values;
  /// Daemon incarnation that served the fetch (starts at 1, +1 per crash
  /// restart).  A change means the counters re-baselined: absolute values
  /// restarted near zero and deltas against pre-restart snapshots are
  /// meaningless (see PcpComponent::read).
  std::uint64_t generation = 0;
};

struct LookupReply {
  bool ok = false;
  std::optional<PmId> pmid;
};

struct NamesReply {
  std::vector<std::string> names;
};

/// Client-side round-trip policy: per-attempt deadline, bounded retry with
/// seeded-jitter exponential backoff (pcp/backoff.hpp).  Transient failures
/// (timeout, injected error, daemon crash, overload shed) are retried;
/// Status::Shutdown is terminal.
struct RpcOptions {
  std::chrono::milliseconds timeout{2000};   ///< per-attempt reply deadline
  int max_retries = 3;                       ///< attempts = max_retries + 1
  std::chrono::microseconds backoff_base{100};  ///< doubles per retry
  /// Seed of the deterministic backoff jitter; mixed with the client id so
  /// distinct clients desynchronize after a shared failure.
  std::uint64_t jitter_seed = 0x5DEECE66Dull;
};

/// Service-side scaling knobs.  The defaults keep single-client callers
/// (every pre-scale test) behaviorally identical to the historic mailbox:
/// generous bounds, cache off.
struct PmcdOptions {
  std::uint32_t shards = 4;                    ///< worker pool width
  std::uint32_t per_tenant_queue_limit = 64;   ///< queued requests per tenant
  std::uint32_t total_queue_limit = 4096;      ///< queued requests, all shards
  /// Fetch replies younger than this are served from the shard cache
  /// without re-reading the PMU.  0 disables the cache.  A cached value can
  /// be up to one TTL stale -- the staleness bound the freshness probe
  /// (pcp/probe_freshness.hpp) enforces.
  std::chrono::microseconds fetch_cache_ttl{0};
  std::size_t fetch_cache_capacity = 1024;     ///< entries per shard before flush
};

/// The daemon.  Owns the PMNS and the privileged nest handle.
class Pmcd {
 public:
  /// Starts the worker pool.  The daemon itself opens the nest PMU with
  /// root credentials -- this is the privilege boundary being modelled.
  explicit Pmcd(sim::Machine& machine, PmcdOptions options = {});
  ~Pmcd();

  Pmcd(const Pmcd&) = delete;
  Pmcd& operator=(const Pmcd&) = delete;

  // --- client-side entry points (thread-safe, synchronous round-trips) ---
  // Each call is a deadline-bounded round trip with retry (RpcOptions).
  // @throws Error(Status::Timeout) when every attempt missed its deadline,
  // Error(Status::Shutdown) when the daemon is (or goes) down,
  // Error(Status::Overloaded) when every attempt was shed at admission, and
  // Error(Status::Internal) when retries exhaust on transient faults.

  /// Register a tenant for fair-share admission; ids are never reused.
  ClientId register_client();

  /// pmLookupName.
  LookupReply lookup(const std::string& name, ClientId client = 0);

  /// pmGetChildren / pmTraversePMNS over a prefix.
  NamesReply names_under(const std::string& prefix, ClientId client = 0);

  /// pmFetch: read `pmids` for the instance (hardware thread) `cpu`.
  FetchReply fetch(const std::vector<PmId>& pmids, std::uint32_t cpu,
                   ClientId client = 0);

  // --- lifecycle & fault injection ---

  /// Drain-then-stop: requests already accepted are served, then the worker
  /// pool exits; posts racing with or following shutdown fail fast with
  /// Error(Status::Shutdown).  Idempotent; the destructor calls it.
  void shutdown();

  /// Install a fault schedule (thread-safe; applies to subsequent requests).
  void set_fault_plan(const FaultPlan& plan);

  /// Override the round-trip policy (thread-safe).
  void set_rpc_options(const RpcOptions& opt);

  /// Re-tune admission bounds at runtime (thread-safe).  Used by overload
  /// tests and by operators recovering a saturated node.
  void set_admission_limits(std::uint32_t per_tenant, std::uint32_t total);

  const Pmns& pmns() const { return pmns_; }
  const PmcdOptions& options() const { return options_; }
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Current daemon incarnation (1 = never crashed).
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }
  std::uint64_t restarts() const { return generation() - 1; }
  std::uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }
  /// Fetches resolved by another fetch's counter read.
  std::uint64_t coalesced() const {
    return coalesced_.load(std::memory_order_relaxed);
  }
  std::uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  /// Requests rejected at admission (Status::Overloaded backpressure).
  std::uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }

 private:
  // Every request carries its attempt's TraceContext (DESIGN.md §3j) so the
  // shard worker can attribute queue wait, coalescing, cache consults and
  // the PMU read to the causal trace the client minted.
  struct LookupReq {
    std::string name;
    trace::TraceContext ctx;
    std::promise<LookupReply> reply;
  };
  struct NamesReq {
    std::string prefix;
    trace::TraceContext ctx;
    std::promise<NamesReply> reply;
  };
  struct FetchReq {
    std::vector<PmId> pmids;
    std::uint32_t cpu = 0;
    std::string key;  ///< coalescing/cache key: cpu + pmids, built at post
    trace::TraceContext ctx;
    std::promise<FetchReply> reply;
  };
  using Request = std::variant<LookupReq, NamesReq, FetchReq>;

  /// A queued request plus its tenant's pending-count cell (decremented at
  /// dequeue, lock-free, so workers never touch the admission mutex), its
  /// trace context and enqueue timestamp (for the queue-wait span).
  struct Queued {
    Request req;
    std::atomic<std::uint32_t>* tenant = nullptr;
    trace::TraceContext ctx;
    std::uint64_t enqueue_ns = 0;
  };

  /// One worker's mailbox plus its reply cache.  The cache is touched only
  /// by the owning worker (single consumer), so it needs no lock; restarts
  /// clear it with the pool joined.
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Queued> queue;  ///< guarded by mu

    struct CacheEntry {
      std::vector<std::uint64_t> values;
      std::uint64_t generation = 0;
      std::chrono::steady_clock::time_point stamped;
    };
    std::unordered_map<std::string, CacheEntry> cache;  ///< worker-only
    std::thread worker;
  };

  enum class PostResult { Accepted, Overloaded, ShuttingDown };

  void serve_shard(std::uint32_t shard_index);

  /// Admission: restart a crashed pool (supervisor path), enforce the
  /// fair-share bounds, enqueue onto the request's shard.
  PostResult post(Request req, ClientId client);

  /// Join the crashed pool, fail any residually queued requests, re-baseline
  /// the counters, start the next incarnation.  Caller holds mu_.
  void restart_locked();

  /// Fail a pending request's promise with `err`.
  static void fail_request(Request& req, const Error& err);

  /// Deadline + retry loop shared by lookup/names_under/fetch.
  template <typename Reply, typename MakeReq>
  Reply round_trip(ClientId client, MakeReq&& make_req);

  /// Tenant pending-count cell for `client` (slot 0 for unknown ids).
  /// Caller holds mu_.
  std::atomic<std::uint32_t>* tenant_slot_locked(ClientId client);

  /// Dequeue bookkeeping: pending counts and the queue-depth gauge.
  void finish_dequeue(const Queued& q);

  /// Serve one lookup/names request (sets the promise).
  void serve_control(Request& req);

  /// Serve a fetch through the shard cache (TTL + generation checks).
  /// `svc` is the worker's service span (parent of cache/counter spans).
  FetchReply serve_fetch_cached(Shard& shard, const FetchReq& req,
                                const trace::TraceContext& svc);

  /// Read the PMU for one fetch (no cache).
  FetchReply compute_fetch(const FetchReq& req, const trace::TraceContext& svc);

  /// Pull every queued fetch on `shard` with `key` out of the queue.
  std::vector<Queued> extract_coalescable(Shard& shard, const std::string& key);

  /// The crash protocol: fail everything queued on every shard (and every
  /// parked drop victim), mark the pool crashed, wake the other workers so
  /// they exit.  Called by the crashing worker.
  void crash_pool();

  void publish_ratio_gauges();

  std::uint32_t shard_of(const Request& req) const;

  std::size_t counter_slot(std::uint32_t socket, std::uint32_t channel,
                           nest::NestEventKind kind) const;

  sim::Machine& machine_;
  PmcdOptions options_;
  Pmns pmns_;
  nest::NestPmu pmu_;  ///< opened with root credentials by the daemon

  /// Admission/lifecycle mutex: accepting_, tenant table, admission limits,
  /// and the supervisor restart.  Workers NEVER take it (they use shard
  /// locks and lock-free counts), so restart_locked can join them while
  /// holding it.
  std::mutex mu_;
  bool accepting_ = true;                       ///< guarded by mu_
  std::uint32_t per_tenant_queue_limit_;        ///< guarded by mu_
  std::uint32_t total_queue_limit_;             ///< guarded by mu_
  /// Pending-queue count per tenant; index = ClientId, slot 0 = anonymous.
  /// Grown only under mu_; cells are referenced lock-free from Queued.
  std::vector<std::unique_ptr<std::atomic<std::uint32_t>>> tenants_;

  std::vector<std::unique_ptr<Shard>> shards_;

  /// Pool state flags: written under mu_ (shutdown/restart) or by the
  /// crashing worker; read lock-free in worker wait predicates.
  std::atomic<bool> draining_{false};
  std::atomic<bool> crashed_{false};

  std::mutex plan_mu_;  ///< guards plan_ and rpc_
  FaultPlan plan_;
  RpcOptions rpc_;

  /// Requests swallowed by Drop faults: parked (promise kept alive) so the
  /// client sees silence, not a broken promise; failed at crash or drain.
  std::mutex dropped_mu_;
  std::vector<Request> dropped_;

  /// Per-counter baseline subtracted from raw PMU reads; rewritten only
  /// between incarnations (no worker running), read lock-free by workers.
  std::vector<std::uint64_t> base_;

  std::atomic<std::uint32_t> total_queued_{0};
  std::atomic<std::uint64_t> service_index_{0};  ///< fault-roll index, dequeue order

  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> generation_{1};
  std::atomic<std::uint64_t> faults_injected_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> fetches_resolved_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> shed_{0};

  std::mutex lifecycle_mu_;  ///< serializes shutdown()/destructor joins
};

}  // namespace papisim::pcp
