// Deterministic seeded retry-backoff jitter for PCP clients.
//
// When one daemon crash (or overload shed) fails N clients at once, plain
// exponential backoff re-arrives them in lockstep: every retry wave is
// another burst, and the daemon never climbs out of saturation (a retry
// storm).  The fix is per-client jitter -- but random jitter would make the
// fault tests irreproducible, so the jitter is drawn deterministically from
// (jitter_seed, client identity, attempt number) via the same splitmix64
// mix the FaultPlan uses.  Two clients with different identities desynchronize;
// the same client replays the same schedule on every run.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "pcp/fault.hpp"

namespace papisim::pcp {

/// Backoff before retry `attempt` (attempt >= 1): exponential base doubling
/// per retry, scaled by a deterministic jitter factor in [0.5, 1.5) drawn
/// from (seed, identity, attempt).  `identity` is the client id (or 0 for
/// anonymous daemon-direct callers).
template <typename Rep, typename Period>
std::chrono::microseconds jittered_backoff(
    std::chrono::duration<Rep, Period> backoff_base, std::uint64_t jitter_seed,
    std::uint64_t identity, int attempt) {
  const auto base = std::chrono::duration_cast<std::chrono::microseconds>(
      backoff_base * (1ull << std::min(attempt - 1, 20)));
  const double u = splitmix64_unit(jitter_seed ^
                                   (identity * 0x9E3779B97F4A7C15ull) ^
                                   static_cast<std::uint64_t>(attempt));
  const double scaled = static_cast<double>(base.count()) * (0.5 + u);
  return std::chrono::microseconds(static_cast<std::int64_t>(scaled));
}

}  // namespace papisim::pcp
