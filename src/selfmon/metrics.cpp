#include "selfmon/metrics.hpp"

#include <memory>
#include <mutex>
#include <vector>

namespace papisim::selfmon {

namespace {

constexpr MetricInfo kCounterInfo[kNumCounters] = {
    {"pool.batches", "parallel_for batches dispatched to the replay pool", "batches"},
    {"pool.claims", "batch indices claimed from the shared cursor", "claims"},
    {"pool.tasks", "pool tasks executed to completion", "tasks"},
    {"pool.exceptions_dropped",
     "task exceptions beyond the first per batch (dropped, not rethrown)", "exceptions"},
    {"l3.stripe_acquisitions", "L3 stripe mutex acquisitions", "locks"},
    {"l3.stripe_contention",
     "contended stripe acquisitions, estimated from sampled try_lock probes",
     "locks"},
    {"pcp.requests_served", "requests completed by the PMCD service thread", "requests"},
    {"pcp.retries", "PMCD round-trip retries after a timeout or transient fault",
     "retries"},
    {"pcp.timeouts", "PMCD round-trip attempts that missed the client deadline",
     "timeouts"},
    {"pcp.faults_injected", "PMCD requests faulted by the active FaultPlan", "faults"},
    {"pcp.restarts", "crashed PMCD service threads revived by the supervisor",
     "restarts"},
    {"pcp.coalesced",
     "queued identical fetches resolved by another fetch's counter read",
     "requests"},
    {"pcp.cache_hits", "fetches served from the short-TTL reply cache", "requests"},
    {"pcp.cache_misses", "fetches that consulted the cache and read the PMU",
     "requests"},
    {"pcp.overload_shed",
     "requests rejected at admission by fair-share backpressure", "requests"},
    {"sampler.rows", "timeline rows recorded by Sampler::sample()", "rows"},
    {"runner.reps", "kernel repetitions executed by KernelRunner", "reps"},
    {"runner.reps_replayed",
     "repetitions fully replayed through the cache simulator", "reps"},
    {"runner.reps_extrapolated",
     "repetitions extrapolated from recorded per-channel traffic", "reps"},
    {"runner.resample_fallbacks",
     "sampled-replay signature divergences that forced full replay", "fallbacks"},
    {"spe.samples", "precise-event samples recorded into per-core SPE rings",
     "samples"},
    {"spe.drops",
     "precise-event samples dropped because a per-core SPE ring was full",
     "samples"},
    {"trace.spans", "causal spans recorded into per-thread trace rings",
     "spans"},
    {"trace.spans_dropped",
     "causal spans rejected because a trace ring was full", "spans"},
    {"trace.flight_dumps",
     "flight-recorder dumps written on crash/overload/deadline triggers",
     "dumps"},
};

constexpr MetricInfo kGaugeInfo[kNumGauges] = {
    {"pcp.queue_depth", "requests currently queued at the PMCD (all shards)",
     "requests"},
    {"pcp.coalesce_ratio_ppm",
     "coalesced fetches per million resolved fetches", "ppm"},
    {"pcp.cache_hit_ppm", "cache hits per million cache consultations", "ppm"},
};

constexpr MetricInfo kHistInfo[kNumHists] = {
    {"pool.dispatch_ns", "parallel_for latency, submit to join", "ns"},
    {"pool.queue_wait_ns", "worker idle wait between batches", "ns"},
    {"pcp.fetch_rtt_ns", "client-visible PMCD fetch round trip", "ns"},
    {"sampler.sample_ns", "one Sampler::sample() including all reads", "ns"},
    {"runner.rep_ns", "one kernel repetition, simulated or replayed", "ns"},
};

using detail::ThreadBlock;

void merge_block_into(const ThreadBlock& block, Snapshot& out) {
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    out.counters[c] += block.counters[c].load(std::memory_order_relaxed);
  }
  for (std::size_t h = 0; h < kNumHists; ++h) {
    HistSnapshot& hs = out.hists[h];
    hs.sum_ns += block.hists[h].sum_ns.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      const std::uint64_t n = block.hists[h].buckets[b].load(std::memory_order_relaxed);
      hs.buckets[b] += n;
      hs.count += n;
    }
  }
}

void zero_block(ThreadBlock& block) {
  for (auto& c : block.counters) c.store(0, std::memory_order_relaxed);
  for (auto& h : block.hists) {
    for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    h.sum_ns.store(0, std::memory_order_relaxed);
  }
}

/// Owns every thread block ever created.  Blocks of exited threads are
/// merged into `retired_` and recycled, so totals survive thread churn and
/// memory stays bounded by the peak live-thread count.
class Registry {
 public:
  ThreadBlock* acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    ThreadBlock* block;
    if (!free_.empty()) {
      block = free_.back();
      free_.pop_back();
    } else {
      all_.push_back(std::make_unique<ThreadBlock>());
      block = all_.back().get();
    }
    return block;
  }

  void retire(ThreadBlock* block) {
    std::lock_guard<std::mutex> lock(mu_);
    merge_block_into(*block, retired_);
    zero_block(*block);
    free_.push_back(block);
  }

  Snapshot snapshot() {
    Snapshot out;
    std::lock_guard<std::mutex> lock(mu_);
    out = retired_;
    // Free blocks are zeroed, so summing every block ever allocated is the
    // same as summing the live ones.
    for (const auto& block : all_) merge_block_into(*block, out);
    for (std::size_t g = 0; g < kNumGauges; ++g) {
      out.gauges[g] = gauges_[g].load(std::memory_order_relaxed);
    }
    return out;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    retired_ = Snapshot{};
    for (const auto& block : all_) zero_block(*block);
    for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  }

  void gauge_add(GaugeId id, std::int64_t delta) {
    gauges_[idx(id)].fetch_add(delta, std::memory_order_relaxed);
  }

  void gauge_set(GaugeId id, std::int64_t value) {
    gauges_[idx(id)].store(value, std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBlock>> all_;
  std::vector<ThreadBlock*> free_;
  Snapshot retired_;  ///< merged totals of exited threads (gauges unused)
  std::array<std::atomic<std::int64_t>, kNumGauges> gauges_{};
};

/// Deliberately leaked: thread_local destructors of late-exiting threads may
/// retire blocks after main() returns; a leaked singleton has no destruction
/// order to race with.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

/// Retires the thread's block when the thread exits.
struct BlockHandle {
  ThreadBlock* block = nullptr;
  ~BlockHandle() {
    if (block != nullptr) {
      registry().retire(block);
      detail::tls_block = nullptr;
    }
  }
};

thread_local BlockHandle t_handle;

}  // namespace

namespace detail {

thread_local ThreadBlock* tls_block = nullptr;

ThreadBlock& acquire_block() {
  ThreadBlock* block = registry().acquire();
  t_handle.block = block;
  tls_block = block;
  return *block;
}

void gauge_add_impl(GaugeId id, std::int64_t delta) {
  registry().gauge_add(id, delta);
}

void gauge_set_impl(GaugeId id, std::int64_t value) {
  registry().gauge_set(id, value);
}

}  // namespace detail

const MetricInfo& counter_info(CounterId id) { return kCounterInfo[idx(id)]; }
const MetricInfo& gauge_info(GaugeId id) { return kGaugeInfo[idx(id)]; }
const MetricInfo& hist_info(HistId id) { return kHistInfo[idx(id)]; }

double HistSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based; walk the cumulative distribution.
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const std::uint64_t prev = cum;
    cum += buckets[b];
    if (static_cast<double>(cum) >= rank) {
      // Bucket b spans [2^(b-1), 2^b); bucket 0 is exactly {0}.
      if (b == 0) return 0.0;
      const double lo = static_cast<double>(1ull << (b - 1));
      const double hi = lo * 2.0;
      const double frac =
          (rank - static_cast<double>(prev)) / static_cast<double>(buckets[b]);
      return lo + (hi - lo) * frac;
    }
  }
  return static_cast<double>(1ull << (kHistBuckets - 1));
}

HistSnapshot HistSnapshot::since(const HistSnapshot& earlier) const {
  HistSnapshot out;
  out.count = count - earlier.count;
  out.sum_ns = sum_ns - earlier.sum_ns;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    out.buckets[b] = buckets[b] - earlier.buckets[b];
  }
  return out;
}

Snapshot snapshot() { return registry().snapshot(); }

void reset_for_testing() { return registry().reset(); }

}  // namespace papisim::selfmon
