// Self-monitoring metrics registry: the simulator profiles the profiler.
//
// The paper's central concern is the cost and trustworthiness of *indirect*
// measurement (PCP's daemon round-trips vs direct privileged reads).  This
// registry gives the reproduction visibility into its own indirection costs:
// PMCD round-trip latency, replay-pool dispatch and queue-wait time, L3
// stripe-lock contention, sampler overhead.  The metrics are exposed through
// the ordinary multi-component API by SelfmonComponent, so the measurement
// pipeline can carry "profiling the profiler" columns next to pcp/nvml ones.
//
// Design (DESIGN.md "Observability / selfmon"):
//  * Fixed metric set (enums below): counters (monotonic), gauges
//    (instantaneous, e.g. PMCD queue depth) and latency histograms with
//    power-of-two nanosecond buckets.
//  * Writers are lock-free: each thread owns a ThreadBlock of relaxed
//    atomics, registered once on first use; the hot-path cost of one
//    counter_add is a TLS load plus a relaxed load+store pair (owner-only
//    writes need no atomic RMW, see detail::owner_add).
//  * Readers merge on read: snapshot() sums every thread's block (plus the
//    merged totals of exited threads) under the registry mutex.  Writers are
//    never blocked by readers.
//  * Wall-clock (std::chrono::steady_clock), NOT the virtual SimClock: these
//    are real host costs of the harness itself, the quantity the paper's
//    adaptive-repetition scheme (Eq. 5) exists to amortize.
//  * Compile-out: configure with -DPAPISIM_SELFMON=OFF and every recording
//    call becomes an empty inline function (kEnabled == false); snapshot()
//    then reports all zeros and SelfmonComponent registers as disabled.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <string_view>

#ifndef PAPISIM_SELFMON_ENABLED
#define PAPISIM_SELFMON_ENABLED 1
#endif

namespace papisim::selfmon {

inline constexpr bool kEnabled = PAPISIM_SELFMON_ENABLED != 0;

/// Monotonic counters.  Order must match kCounterInfo in metrics.cpp.
enum class CounterId : std::uint16_t {
  PoolBatches,             ///< parallel_for batches dispatched
  PoolClaims,              ///< indices claimed from the shared batch cursor
  PoolTasks,               ///< tasks executed to completion
  PoolExceptionsDropped,   ///< task exceptions beyond the first (not rethrown)
  L3StripeAcquisitions,    ///< stripe mutex acquisitions
  L3StripeContention,      ///< contended acquisitions (sampled-probe estimate)
  PcpRequestsServed,       ///< requests the PMCD thread completed
  PcpRetries,              ///< round-trip retries after timeout or transient fault
  PcpTimeouts,             ///< round-trip attempts that missed the client deadline
  PcpFaultsInjected,       ///< requests faulted by the active FaultPlan
  PcpRestarts,             ///< crashed PMCD service threads revived by the supervisor
  PcpFetchesCoalesced,     ///< queued fetches resolved by another fetch's counter read
  PcpCacheHits,            ///< fetches served from the short-TTL reply cache
  PcpCacheMisses,          ///< fetches that consulted the cache and read the PMU
  PcpOverloadShed,         ///< requests rejected at admission (fair-share backpressure)
  SamplerRows,             ///< timeline rows recorded by Sampler::sample()
  RunnerReps,              ///< kernel repetitions executed (replayed or extrapolated)
  RunnerRepsReplayed,      ///< repetitions fully replayed through the simulator
  RunnerRepsExtrapolated,  ///< repetitions extrapolated from recorded traffic
  RunnerResampleFallbacks, ///< sampled-replay signature divergences (fallback to full)
  SpeSamples,              ///< precise-event samples recorded into per-core rings
  SpeDrops,                ///< SPE samples dropped by a full ring (backpressure)
  TraceSpans,              ///< causal spans recorded into per-thread trace rings
  TraceSpansDropped,       ///< spans rejected by a full trace ring (backpressure)
  TraceFlightDumps,        ///< flight-recorder dumps written (crash/overload/deadline)
  kCount,
};

/// Instantaneous gauges.  Order must match kGaugeInfo in metrics.cpp.
enum class GaugeId : std::uint16_t {
  PcpQueueDepth,         ///< requests currently queued at the PMCD (all shards)
  PcpCoalesceRatioPpm,   ///< coalesced fetches per million resolved fetches
  PcpCacheHitRatePpm,    ///< cache hits per million cache consultations
  kCount,
};

/// Latency histograms (nanoseconds).  Order must match kHistInfo.
enum class HistId : std::uint16_t {
  PoolDispatchNs,   ///< parallel_for call latency (submit to join)
  PoolQueueWaitNs,  ///< worker idle wait between batches
  PcpFetchRttNs,    ///< client-visible PMCD fetch round trip
  SamplerSampleNs,  ///< one Sampler::sample() (all event-set reads)
  RunnerRepNs,      ///< one kernel repetition (simulate or replay)
  kCount,
};

inline constexpr std::size_t kNumCounters = static_cast<std::size_t>(CounterId::kCount);
inline constexpr std::size_t kNumGauges = static_cast<std::size_t>(GaugeId::kCount);
inline constexpr std::size_t kNumHists = static_cast<std::size_t>(HistId::kCount);

/// Bucket b holds samples with bit_width(ns) == b, i.e. [2^(b-1), 2^b);
/// bucket 0 holds ns == 0.  40 buckets cover up to ~9 minutes.
inline constexpr std::size_t kHistBuckets = 40;

constexpr std::size_t idx(CounterId id) { return static_cast<std::size_t>(id); }
constexpr std::size_t idx(GaugeId id) { return static_cast<std::size_t>(id); }
constexpr std::size_t idx(HistId id) { return static_cast<std::size_t>(id); }

struct MetricInfo {
  std::string_view name;         ///< dotted selfmon event name, e.g. "pool.tasks"
  std::string_view description;
  std::string_view units;
};

const MetricInfo& counter_info(CounterId id);
const MetricInfo& gauge_info(GaugeId id);
const MetricInfo& hist_info(HistId id);

/// A merged histogram as seen at one point in time.
struct HistSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::array<std::uint64_t, kHistBuckets> buckets{};

  /// q in [0, 1]; linear interpolation inside the matched power-of-two
  /// bucket.  Returns 0 for an empty histogram.
  double percentile(double q) const;

  double mean_ns() const {
    return count == 0 ? 0.0 : static_cast<double>(sum_ns) / static_cast<double>(count);
  }

  /// Bucket-wise difference against an earlier snapshot of the same
  /// histogram (the "since start()" window of SelfmonComponent).
  HistSnapshot since(const HistSnapshot& earlier) const;
};

/// Merged view of every metric (merge-on-read over all thread blocks).
struct Snapshot {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<std::int64_t, kNumGauges> gauges{};
  std::array<HistSnapshot, kNumHists> hists{};

  std::uint64_t counter(CounterId id) const { return counters[idx(id)]; }
  std::int64_t gauge(GaugeId id) const { return gauges[idx(id)]; }
  const HistSnapshot& hist(HistId id) const { return hists[idx(id)]; }
};

namespace detail {

/// One thread's private slab of metrics.  Only the owning thread writes
/// (relaxed load+store, no RMW needed with a single writer); snapshot()
/// does relaxed loads from other threads, which is exactly what atomics
/// are for.
struct ThreadBlock {
  std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
  struct Hist {
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
    std::atomic<std::uint64_t> sum_ns{0};
  };
  std::array<Hist, kNumHists> hists{};
};

extern thread_local ThreadBlock* tls_block;

/// Slow path: allocate (or reuse a retired) block and register it.
ThreadBlock& acquire_block();

inline ThreadBlock& local_block() {
  ThreadBlock* b = tls_block;
  return b != nullptr ? *b : acquire_block();
}

void gauge_add_impl(GaugeId id, std::int64_t delta);
void gauge_set_impl(GaugeId id, std::int64_t value);

}  // namespace detail

namespace detail {

/// Owner-only increment: the owning thread is the sole writer of its block,
/// so a relaxed load+store pair replaces the atomic RMW -- no locked
/// instruction on the hot path (snapshot() readers still see whole values).
inline void owner_add(std::atomic<std::uint64_t>& cell, std::uint64_t n) {
  cell.store(cell.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

}  // namespace detail

inline void counter_add(CounterId id, std::uint64_t n = 1) {
  if constexpr (kEnabled) {
    detail::owner_add(detail::local_block().counters[idx(id)], n);
  } else {
    (void)id;
    (void)n;
  }
}

inline void gauge_add(GaugeId id, std::int64_t delta) {
  if constexpr (kEnabled) {
    detail::gauge_add_impl(id, delta);
  } else {
    (void)id;
    (void)delta;
  }
}

inline void gauge_set(GaugeId id, std::int64_t value) {
  if constexpr (kEnabled) {
    detail::gauge_set_impl(id, value);
  } else {
    (void)id;
    (void)value;
  }
}

inline void hist_record_ns(HistId id, std::uint64_t ns) {
  if constexpr (kEnabled) {
    const std::size_t b =
        ns == 0 ? 0
                : std::min<std::size_t>(kHistBuckets - 1,
                                        static_cast<std::size_t>(std::bit_width(ns)));
    detail::ThreadBlock::Hist& h = detail::local_block().hists[idx(id)];
    detail::owner_add(h.buckets[b], 1);
    detail::owner_add(h.sum_ns, ns);
  } else {
    (void)id;
    (void)ns;
  }
}

using TimePoint = std::chrono::steady_clock::time_point;

/// steady_clock::now() when enabled, a zero-cost default otherwise.
inline TimePoint clock_now() {
  if constexpr (kEnabled) {
    return std::chrono::steady_clock::now();
  } else {
    return {};
  }
}

inline void hist_record_since(HistId id, TimePoint t0) {
  if constexpr (kEnabled) {
    const auto dt = std::chrono::steady_clock::now() - t0;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count();
    hist_record_ns(id, ns < 0 ? 0 : static_cast<std::uint64_t>(ns));
  } else {
    (void)id;
    (void)t0;
  }
}

/// RAII latency probe: records the scope's wall time into a histogram.
class Stopwatch {
 public:
  explicit Stopwatch(HistId id) : id_(id), t0_(clock_now()) {}
  Stopwatch(const Stopwatch&) = delete;
  Stopwatch& operator=(const Stopwatch&) = delete;
  ~Stopwatch() { hist_record_since(id_, t0_); }

 private:
  HistId id_;
  TimePoint t0_;
};

/// Merge-on-read over every live and retired thread block.  Thread-safe;
/// concurrent writers keep writing (values are a consistent-enough relaxed
/// sum, monotone per counter across successive snapshots of a quiescent
/// writer set).
Snapshot snapshot();

/// Zero every metric.  Test-only: callers must guarantee no concurrent
/// writers (instrumented threads may be alive but must be idle).
void reset_for_testing();

}  // namespace papisim::selfmon
