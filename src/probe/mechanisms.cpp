// The six mechanism probes.  Each one encodes a falsifiable claim about the
// simulator's micro-architecture (the claims the paper's figure shapes rest
// on), derives exact analytic traffic for a sweep of synthetic probes, and
// contrasts an arm where the mechanism must fire against an arm where it
// must not.  Expectations come from the *mechanism model* -- deliberately
// not from the policy flags of the config under test -- so a configuration
// (or refactor) that disables a policy is REFUTED instead of silently
// blessed.  Calibration parameters that the model treats as free (cast-out
// retention fraction, channel count, interleave granularity) are read from
// the config; mechanism structure (bypass density threshold, the existence
// of the allocate read) is pinned to the documented model (DESIGN.md §3/§3f).
#include <algorithm>
#include <chrono>
#include <string>

#include "probe/probe.hpp"
#include "probe/replay.hpp"

namespace papisim::probe {

namespace {

/// The documented bypass density threshold: a dense store stream bypasses
/// when at most this many load streams feed it per iteration (DESIGN.md §3,
/// "GEMM/GEMV stores are sparse ... so they allocate").  A mechanism claim,
/// not a calibration knob: probing a machine configured differently refutes.
constexpr std::uint32_t kRefMaxLoadsPerStore = 2;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

ProbePoint make_point(std::string label, std::string unit, double expected,
                      double lo, double hi, double measured) {
  ProbePoint p;
  p.label = std::move(label);
  p.unit = std::move(unit);
  p.expected = expected;
  p.lo = lo;
  p.hi = hi;
  p.measured = measured;
  p.pass = measured >= lo && measured <= hi;
  return p;
}

/// Symmetric band: expected +/- tol.
void add_point(MechanismReport& r, std::string label, std::string unit,
               double expected, double tol, double measured) {
  r.points.push_back(make_point(std::move(label), std::move(unit), expected,
                                expected - tol, expected + tol, measured));
}

/// Asymmetric band [lo, hi] (capacity-dependent expectations).
void add_band(MechanismReport& r, std::string label, std::string unit,
              double expected, double lo, double hi, double measured) {
  r.points.push_back(
      make_point(std::move(label), std::move(unit), expected, lo, hi, measured));
}

/// Verdict: every point in band AND the contrast effect present -> CONFIRM;
/// effect absent (or wildly off) -> REFUTE regardless of individual points;
/// effect present but some point out of band -> INCONCLUSIVE (mechanism
/// exists but is mis-calibrated -- a different bug than "mechanism gone").
void finalize(MechanismReport& r, Clock::time_point t0) {
  r.wall_ms = ms_since(t0);
  bool all_pass = true;
  for (const ProbePoint& p : r.points) all_pass = all_pass && p.pass;
  const double hi = r.expected_effect + (r.expected_effect - r.min_effect);
  const bool effect_ok = r.effect_size >= r.min_effect && r.effect_size <= hi;
  if (all_pass && effect_ok) {
    r.verdict = Verdict::Confirm;
  } else if (!effect_ok) {
    r.verdict = Verdict::Refute;
  } else {
    r.verdict = Verdict::Inconclusive;
  }
}

std::string fmt_bytes(std::uint64_t b) {
  if (b % (1ull << 20) == 0) return std::to_string(b >> 20) + "MiB";
  if (b % (1ull << 10) == 0) return std::to_string(b >> 10) + "KiB";
  return std::to_string(b) + "B";
}

}  // namespace

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::Confirm: return "CONFIRM";
    case Verdict::Refute: return "REFUTE";
    case Verdict::Inconclusive: return "INCONCLUSIVE";
  }
  return "?";
}

sim::MachineConfig probe_machine(const sim::MachineConfig& base) {
  // Small fixed geometry; every *policy* knob (store bypass + density cap,
  // stream-detect threshold, lateral cast-out + retention, channel count +
  // interleave, bandwidth/utilization model) rides along from `base`.
  sim::MachineConfig cfg = base;
  cfg.name = base.name + "-probe";
  cfg.sockets = 1;
  cfg.cores_per_socket = 4;
  cfg.physical_cores_per_socket = 4;
  cfg.l3_slice_bytes = 256ull << 10;
  cfg.l3_associativity = 8;
  return cfg;
}

GridAxes probe_grid(const ProbeOptions& opt) {
  if (opt.full_grid) {
    return {{8, 16, 32, 64},
            {0.125, 0.25, 0.5, 1.0, 2.0},
            {1, 2, 3, 4, 6},
            {1, 2, 4}};
  }
  return {{8, 16}, {0.25, 1.0}, {1, 2, 3}, {1, 4}};
}

// ---------------------------------------------------------------- bypass

MechanismReport probe_write_allocate_bypass(const ProbeOptions& opt) {
  const auto t0 = Clock::now();
  const sim::MachineConfig cfg = probe_machine(opt.machine);
  const GridAxes grid = probe_grid(opt);
  const double line = cfg.line_bytes;

  MechanismReport r;
  r.mechanism = "write_allocate_bypass";
  r.description =
      "dense contiguous store streams bypass the cache (no allocate read) "
      "up to " + std::to_string(kRefMaxLoadsPerStore) +
      " load streams per store; denser read mixes write-allocate";
  r.expected_effect = 1.0;  // one allocate read per stored line reappears
  r.min_effect = 0.4;

  double ratio_bypass_arm = 0.0, ratio_alloc_arm = 0.0;
  bool have_bypass_arm = false, have_alloc_arm = false;

  for (const std::int64_t stride : grid.strides) {
    for (const double frac : grid.footprint_slices) {
      const std::uint64_t f =
          static_cast<std::uint64_t>(frac * static_cast<double>(cfg.l3_slice_bytes));
      for (const std::uint32_t d : grid.densities) {
        std::vector<StreamSpec> streams(
            d, {stride, static_cast<std::uint32_t>(stride), sim::AccessKind::Load});
        streams.push_back(
            {stride, static_cast<std::uint32_t>(stride), sim::AccessKind::Store});
        const LoopResult res = replay_loop(cfg, streams, f / stride);
        r.line_touches += res.stats.line_touches;

        const bool expect_bypass = d <= kRefMaxLoadsPerStore;
        const double fd = static_cast<double>(f);
        const double exp_reads = expect_bypass ? d * fd : (d + 1) * fd;
        const double tol = std::max(exp_reads * 0.005, line);
        const std::string at = "stride=" + std::to_string(stride) +
                               " f=" + fmt_bytes(f) + " d=" + std::to_string(d);
        add_point(r, at + " loop reads", "bytes", exp_reads, tol,
                  static_cast<double>(res.stats.mem_read_bytes));
        // Every stored line drains exactly once, bypassed or allocated.
        add_point(r, at + " total writes", "bytes", fd,
                  std::max(fd * 0.005, line),
                  static_cast<double>(res.write_bytes_total));
        add_point(r, at + " bypassed share", "share", expect_bypass ? 1.0 : 0.0,
                  0.02,
                  static_cast<double>(res.stats.bypassed_store_lines) /
                      (fd / line));

        // Contrast pair for the effect size: the allocate-read ratio at the
        // first (stride, footprint) cell, first bypass arm vs first defeat
        // arm.
        const double alloc_ratio =
            (static_cast<double>(res.stats.mem_read_bytes) - d * fd) / fd;
        if (stride == grid.strides.front() &&
            frac == grid.footprint_slices.front()) {
          if (expect_bypass && !have_bypass_arm) {
            ratio_bypass_arm = alloc_ratio;
            have_bypass_arm = true;
          } else if (!expect_bypass && !have_alloc_arm) {
            ratio_alloc_arm = alloc_ratio;
            have_alloc_arm = true;
          }
        }
      }
    }
  }
  r.effect_size =
      have_bypass_arm && have_alloc_arm ? ratio_alloc_arm - ratio_bypass_arm : 0.0;
  finalize(r, t0);
  return r;
}

// ---------------------------------------------------------- victim borrow

MechanismReport probe_l3_victim_borrow(const ProbeOptions& opt) {
  const auto t0 = Clock::now();
  const sim::MachineConfig cfg = probe_machine(opt.machine);
  const double retention = cfg.castout_retention;

  MechanismReport r;
  r.mechanism = "l3_victim_borrow";
  r.description =
      "a lone core's capacity victims are cast out into idle cores' slices "
      "and recovered on re-reference; a fully occupied socket has no victim "
      "headroom and re-reads its whole footprint";
  r.expected_effect = retention;  // contended - lone re-read fraction
  r.min_effect = 0.4;

  // The retention model covers footprints with victim headroom: slice +
  // victim = cores x slice total, so stay at or under 2x the slice.  At
  // ~3x the lone core runs the victim store at its exact capacity and
  // insert drops (not retention) dominate -- out of scope for this claim.
  const std::uint32_t cores = cfg.cores_per_socket;
  std::vector<double> footprints{2.0};
  if (opt.full_grid) footprints = {1.25, 1.5, 2.0};

  double lone_frac_2x = 0.0, full_frac_2x = 0.0;
  for (const double fx : footprints) {
    const std::uint64_t f =
        static_cast<std::uint64_t>(fx * static_cast<double>(cfg.l3_slice_bytes));
    const double fd = static_cast<double>(f);

    // Lone arm: one active core, victim capacity = (cores-1) slices.
    const SweepResult lone = replay_multicore_sweep(
        cfg, 1, f, cfg.line_bytes, /*passes=*/2, opt.host_threads);
    r.line_touches += lone.line_touches;
    const double lone_reads = static_cast<double>(lone.pass_read_bytes[0][1]);
    // Victim recoveries fail at (1-retention) per event; hashed-set overflow
    // in the victim store adds a small tail that grows with the overflow of
    // the victim capacity, hence the asymmetric band.
    const double exp_lone = (1.0 - retention) * fd;
    add_band(r, "f=" + fmt_bytes(f) + " lone pass-2 reads", "bytes", exp_lone,
             0.0, exp_lone + 0.15 * fd, lone_reads);

    // Contended arm: every core active and replaying its own footprint --
    // zero victim capacity, the sweep re-reads everything.
    const SweepResult full = replay_multicore_sweep(
        cfg, cores, f, cfg.line_bytes, /*passes=*/2, opt.host_threads);
    r.line_touches += full.line_touches;
    const double full_reads = static_cast<double>(full.pass_read_bytes[0][1]);
    const double lo = (fx < 2.0 ? 0.75 : 0.85) * fd;
    add_band(r, "f=" + fmt_bytes(f) + " contended pass-2 reads", "bytes", fd,
             lo, fd * 1.01, full_reads);

    if (fx == 2.0) {
      lone_frac_2x = lone_reads / fd;
      full_frac_2x = full_reads / fd;
    }
  }
  r.effect_size = full_frac_2x - lone_frac_2x;
  finalize(r, t0);
  return r;
}

// ------------------------------------------------------------- prefetch

MechanismReport probe_prefetch_amplification(const ProbeOptions& opt) {
  const auto t0 = Clock::now();
  const sim::MachineConfig cfg = probe_machine(opt.machine);
  const GridAxes grid = probe_grid(opt);
  const double line = cfg.line_bytes;

  MechanismReport r;
  r.mechanism = "prefetch_amplification";
  r.description =
      "software prefetch (dcbtst) forces store-target lines to be *read* "
      "into L3 before the store -- one extra read per stored line -- and "
      "raises achieved bandwidth for the loop";
  r.expected_effect = 1.0;  // extra reads per stored byte
  r.min_effect = 0.5;

  double first_amp = 0.0;
  bool have_amp = false;
  for (const std::int64_t stride : grid.strides) {
    if (opt.full_grid && stride > 16) continue;  // dense copy arms only
    for (const double frac : grid.footprint_slices) {
      if (frac > 1.0) continue;
      const std::uint64_t f =
          static_cast<std::uint64_t>(frac * static_cast<double>(cfg.l3_slice_bytes));
      const double fd = static_cast<double>(f);
      const std::vector<StreamSpec> streams{
          {stride, static_cast<std::uint32_t>(stride), sim::AccessKind::Load},
          {stride, static_cast<std::uint32_t>(stride), sim::AccessKind::Store}};
      const LoopResult pf =
          replay_loop(cfg, streams, f / stride, /*sw_prefetch=*/true);
      const LoopResult nopf =
          replay_loop(cfg, streams, f / stride, /*sw_prefetch=*/false);
      r.line_touches += pf.stats.line_touches + nopf.stats.line_touches;

      const std::string at =
          "stride=" + std::to_string(stride) + " f=" + fmt_bytes(f);
      // Loads f + prefetched store lines f.
      add_point(r, at + " prefetch loop reads", "bytes", 2.0 * fd,
                std::max(2.0 * fd * 0.005, line),
                static_cast<double>(pf.stats.mem_read_bytes));
      add_point(r, at + " prefetch total writes", "bytes", fd,
                std::max(fd * 0.005, line),
                static_cast<double>(pf.write_bytes_total));
      add_point(r, at + " prefetch bypassed share", "share", 0.0, 0.02,
                static_cast<double>(pf.stats.bypassed_store_lines) / (fd / line));
      // Virtual-time contrast (Fig. 7b's speedup).  In-loop traffic: the
      // plain arm moves 2f bytes (f loads + f bypassed store-line writes) at
      // the base utilization; the prefetch arm moves 2f *read* bytes at the
      // prefetch utilization while its stores linger dirty in the slice and
      // drain only at flush.  Both arms touch 2f/line lines, so on machines
      // with enough DRAM bandwidth the per-touch term wins the max() and the
      // ratio collapses to 1.
      const double touch_t = (2.0 * fd / line) * cfg.l3_hit_ns * 1e-9;
      const double plain_t = std::max(
          2.0 * fd / (cfg.mem_bw_bytes_per_sec * cfg.mem_bw_utilization),
          touch_t);
      const double pf_t = std::max(
          2.0 * fd /
              (cfg.mem_bw_bytes_per_sec * cfg.mem_bw_utilization_prefetch),
          touch_t);
      add_point(r, at + " time ratio pf/plain", "ratio", pf_t / plain_t, 0.08,
                pf.stats.time_ns / nopf.stats.time_ns);

      const double amp =
          (static_cast<double>(pf.stats.mem_read_bytes) - fd) / fd;
      if (!have_amp) {
        first_amp = amp;
        have_amp = true;
      }
    }
  }
  r.effect_size = first_amp;
  finalize(r, t0);
  return r;
}

// -------------------------------------------------------- capacity spill

MechanismReport probe_capacity_spill(const ProbeOptions& opt) {
  const auto t0 = Clock::now();
  const sim::MachineConfig cfg = probe_machine(opt.machine);

  MechanismReport r;
  r.mechanism = "capacity_spill";
  r.description =
      "with the socket fully occupied, re-read traffic knees at the slice "
      "capacity: footprints under the slice re-read (almost) nothing, "
      "footprints past it re-read everything";
  r.expected_effect = 1.0;  // re-read fraction above minus below the knee
  r.min_effect = 0.5;

  const std::uint32_t cores = cfg.cores_per_socket;
  std::vector<double> footprints{0.25, 0.5, 2.0, 4.0};
  if (opt.full_grid) footprints = {0.125, 0.25, 0.5, 2.0, 3.0, 4.0};

  double below_frac = -1.0, above_frac = -1.0;
  for (const double fx : footprints) {
    const std::uint64_t f =
        static_cast<std::uint64_t>(fx * static_cast<double>(cfg.l3_slice_bytes));
    const double fd = static_cast<double>(f);
    const SweepResult res = replay_multicore_sweep(
        cfg, cores, f, cfg.line_bytes, /*passes=*/2, opt.host_threads);
    r.line_touches += res.line_touches;
    const double reads = static_cast<double>(res.pass_read_bytes[0][1]);
    if (fx <= 0.3) {
      // Quarter capacity: mean set load is well under the associativity, so
      // re-reads should be essentially nil.  This arm anchors the effect.
      add_band(r, "f=" + fmt_bytes(f) + " pass-2 reads (deep below knee)",
               "bytes", 0.0, 0.0, 0.02 * fd, reads);
      if (below_frac < 0.0) below_frac = reads / fd;
    } else if (fx < 1.0) {
      // Half capacity: the slice's truncated-mix set hash is over-dispersed
      // relative to Poisson, so sets past the associativity thrash a sizable
      // conflict tail (~20% of lines on summit geometry).  Still far below
      // the knee's ~100%.
      add_band(r, "f=" + fmt_bytes(f) + " pass-2 reads (below knee)", "bytes",
               0.2 * fd, 0.0, 0.30 * fd, reads);
    } else {
      add_band(r, "f=" + fmt_bytes(f) + " pass-2 reads (above knee)", "bytes",
               fd, 0.85 * fd, 1.01 * fd, reads);
      if (fx == 2.0) above_frac = reads / fd;
    }
  }
  r.effect_size = above_frac - below_frac;
  finalize(r, t0);
  return r;
}

// -------------------------------------------------------- channel stripe

MechanismReport probe_channel_stripe(const ProbeOptions& opt) {
  const auto t0 = Clock::now();
  const sim::MachineConfig cfg = probe_machine(opt.machine);
  const std::uint32_t ch = cfg.mem_channels;
  const std::uint64_t line = cfg.line_bytes;
  const std::uint64_t period = static_cast<std::uint64_t>(ch) *
                               cfg.channel_interleave_lines * line;

  MechanismReport r;
  r.mechanism = "channel_stripe";
  r.description =
      "lines interleave across the MBA channels at the configured granule: "
      "a dense sweep spreads traffic exactly evenly, a granule-stride sweep "
      "still spreads evenly, and a period-stride sweep camps on one channel";
  r.expected_effect = 1.0 - 1.0 / ch;  // camped minus uniform max share
  r.min_effect = 0.3;

  const std::uint64_t f = opt.full_grid ? (1ull << 20) : (512ull << 10);

  auto max_read_share = [&](const LoopResult& res, double* min_share) {
    std::uint64_t total = 0, mx = 0, mn = ~0ull;
    for (const auto& c : res.channels) {
      total += c[0];
      mx = std::max(mx, c[0]);
      mn = std::min(mn, c[0]);
    }
    if (min_share) {
      *min_share = total ? static_cast<double>(mn) / static_cast<double>(total) : 0;
    }
    return total ? static_cast<double>(mx) / static_cast<double>(total) : 0.0;
  };

  // Arm 1: dense sweep, whole periods -> exactly 1/ch per channel.
  const LoopResult dense = replay_loop(
      cfg, {{static_cast<std::int64_t>(line), 8, sim::AccessKind::Load}},
      f / line);
  r.line_touches += dense.stats.line_touches;
  double dense_min = 0.0;
  const double dense_max = max_read_share(dense, &dense_min);
  add_point(r, "dense sweep max channel share", "share", 1.0 / ch, 0.01,
            dense_max);
  add_point(r, "dense sweep min channel share", "share", 1.0 / ch, 0.01,
            dense_min);

  // Arm 2: one line per interleave granule -> still exactly 1/ch (this is
  // what separates granule-striping from naive per-line striping).
  const std::int64_t granule_stride =
      static_cast<std::int64_t>(cfg.channel_interleave_lines * line);
  const LoopResult gran =
      replay_loop(cfg, {{granule_stride, 8, sim::AccessKind::Load}},
                  f / static_cast<std::uint64_t>(granule_stride));
  r.line_touches += gran.stats.line_touches;
  add_point(r, "granule-stride sweep max channel share", "share", 1.0 / ch,
            0.01, max_read_share(gran, nullptr));

  // Arm 3: stride = one full interleave period -> every touch lands on the
  // channel of the (period-aligned) base.
  const LoopResult camp = replay_loop(
      cfg, {{static_cast<std::int64_t>(period), 8, sim::AccessKind::Load}},
      opt.full_grid ? 4096 : 2048);
  r.line_touches += camp.stats.line_touches;
  const double camp_max = max_read_share(camp, nullptr);
  add_point(r, "period-stride sweep max channel share", "share", 1.0, 0.01,
            camp_max);

  r.effect_size = camp_max - dense_max;
  finalize(r, t0);
  return r;
}

// -------------------------------------------------------- r/w asymmetry

MechanismReport probe_rw_asymmetry(const ProbeOptions& opt) {
  const auto t0 = Clock::now();
  const sim::MachineConfig cfg = probe_machine(opt.machine);
  const GridAxes grid = probe_grid(opt);
  const std::int64_t line = cfg.line_bytes;

  MechanismReport r;
  r.mechanism = "rw_asymmetry";
  r.description =
      "write-allocate makes total reads scale as (d+1) load-bytes per "
      "stored byte for a d-load / 1-strided-store loop, while total writes "
      "stay exactly one writeback per stored line (GEMV's capped R/W shape)";
  r.expected_effect = 1.0;  // d(read/write ratio)/d(density) slope
  r.min_effect = 0.5;

  const std::uint64_t f = cfg.l3_slice_bytes / 2;
  const double fd = static_cast<double>(f);
  const std::uint64_t iters = f / static_cast<std::uint64_t>(line);

  double ratio_min = 0.0, ratio_max = 0.0;
  for (const std::uint32_t d : grid.densities) {
    // d line-stride load streams (sequential at line granularity) plus one
    // 2-line-strided store stream: strided stores never bypass, so every
    // store line pays the allocate read and drains exactly once.
    std::vector<StreamSpec> streams(d, {line, 8, sim::AccessKind::Load});
    streams.push_back({2 * line, 8, sim::AccessKind::Store});
    const LoopResult res = replay_loop(cfg, streams, iters);
    r.line_touches += res.stats.line_touches;

    const double ratio = static_cast<double>(res.read_bytes_total) /
                         static_cast<double>(res.write_bytes_total);
    const std::string at = "d=" + std::to_string(d);
    add_point(r, at + " read/write ratio", "ratio", d + 1.0, 0.02 * (d + 1.0),
              ratio);
    add_point(r, at + " total writes", "bytes", fd,
              std::max(fd * 0.005, static_cast<double>(line)),
              static_cast<double>(res.write_bytes_total));
    if (d == grid.densities.front()) ratio_min = ratio;
    if (d == grid.densities.back()) ratio_max = ratio;
  }
  r.effect_size = (ratio_max - ratio_min) /
                  static_cast<double>(grid.densities.back() -
                                      grid.densities.front());
  finalize(r, t0);
  return r;
}

std::vector<MechanismReport> run_all_probes(const ProbeOptions& opt) {
  std::vector<MechanismReport> out;
  out.push_back(probe_write_allocate_bypass(opt));
  out.push_back(probe_l3_victim_borrow(opt));
  out.push_back(probe_prefetch_amplification(opt));
  out.push_back(probe_capacity_spill(opt));
  out.push_back(probe_channel_stripe(opt));
  out.push_back(probe_rw_asymmetry(opt));
  return out;
}

}  // namespace papisim::probe
