#include "probe/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/json_util.hpp"

namespace papisim::probe {

namespace {

std::size_t passed(const MechanismReport& r) {
  return static_cast<std::size_t>(
      std::count_if(r.points.begin(), r.points.end(),
                    [](const ProbePoint& p) { return p.pass; }));
}

}  // namespace

bool all_confirmed(std::span<const MechanismReport> reports) {
  return std::all_of(reports.begin(), reports.end(),
                     [](const MechanismReport& r) {
                       return r.verdict == Verdict::Confirm;
                     });
}

void write_probe_text(std::ostream& os,
                      std::span<const MechanismReport> reports) {
  std::size_t name_w = 9;
  for (const MechanismReport& r : reports) {
    name_w = std::max(name_w, r.mechanism.size());
  }
  os << std::left << std::setw(static_cast<int>(name_w + 2)) << "mechanism"
     << std::setw(14) << "verdict" << std::setw(22) << "effect (meas/exp)"
     << std::setw(10) << "points" << "wall\n";
  for (const MechanismReport& r : reports) {
    std::ostringstream effect;
    effect << std::fixed << std::setprecision(3) << r.effect_size << " / "
           << std::setprecision(3) << r.expected_effect;
    std::ostringstream pts;
    pts << passed(r) << "/" << r.points.size();
    os << std::left << std::setw(static_cast<int>(name_w + 2)) << r.mechanism
       << std::setw(14) << to_string(r.verdict) << std::setw(22)
       << effect.str() << std::setw(10) << pts.str() << std::fixed
       << std::setprecision(1) << r.wall_ms << " ms\n";
  }
  for (const MechanismReport& r : reports) {
    if (r.verdict == Verdict::Confirm) continue;
    os << "\n" << r.mechanism << " (" << to_string(r.verdict)
       << "): " << r.description << "\n";
    for (const ProbePoint& p : r.points) {
      if (p.pass) continue;
      os << "  FAIL " << p.label << ": measured " << p.measured << " " << p.unit
         << ", expected " << p.expected << " in [" << p.lo << ", " << p.hi
         << "]\n";
    }
  }
}

void write_probe_json(std::ostream& os,
                      std::span<const MechanismReport> reports,
                      const ProbeOptions& opt) {
  const auto num = [&os](double v) {
    // JSON has no Inf/NaN literals; clamp to null for a strict parser.
    if (v != v || v > 1e308 || v < -1e308) {
      os << "null";
    } else {
      os << v;
    }
  };

  std::size_t confirmed = 0, refuted = 0, inconclusive = 0;
  for (const MechanismReport& r : reports) {
    switch (r.verdict) {
      case Verdict::Confirm: ++confirmed; break;
      case Verdict::Refute: ++refuted; break;
      case Verdict::Inconclusive: ++inconclusive; break;
    }
  }

  os << std::setprecision(17);
  os << "{\n  \"papisim_probe\": 1,\n";
  os << "  \"machine\": \"" << json_escape(opt.machine.name) << "\",\n";
  os << "  \"grid\": \"" << (opt.full_grid ? "full" : "curated") << "\",\n";
  os << "  \"mechanisms\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const MechanismReport& r = reports[i];
    os << "    {\"mechanism\": \"" << json_escape(r.mechanism) << "\",\n";
    os << "     \"description\": \"" << json_escape(r.description) << "\",\n";
    os << "     \"verdict\": \"" << to_string(r.verdict) << "\",\n";
    os << "     \"effect_size\": ";
    num(r.effect_size);
    os << ", \"expected_effect\": ";
    num(r.expected_effect);
    os << ", \"min_effect\": ";
    num(r.min_effect);
    os << ",\n     \"line_touches\": " << r.line_touches
       << ", \"wall_ms\": ";
    num(r.wall_ms);
    os << ",\n     \"points\": [\n";
    for (std::size_t j = 0; j < r.points.size(); ++j) {
      const ProbePoint& p = r.points[j];
      os << "      {\"label\": \"" << json_escape(p.label) << "\", \"unit\": \""
         << json_escape(p.unit) << "\", \"expected\": ";
      num(p.expected);
      os << ", \"lo\": ";
      num(p.lo);
      os << ", \"hi\": ";
      num(p.hi);
      os << ", \"measured\": ";
      num(p.measured);
      os << ", \"pass\": " << (p.pass ? "true" : "false") << "}"
         << (j + 1 < r.points.size() ? "," : "") << "\n";
    }
    os << "     ]}" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"summary\": {\"confirmed\": " << confirmed
     << ", \"refuted\": " << refuted << ", \"inconclusive\": " << inconclusive
     << "}\n}\n";
}

}  // namespace papisim::probe
