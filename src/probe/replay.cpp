#include "probe/replay.hpp"

#include <algorithm>
#include <atomic>

#include "sim/machine.hpp"
#include "sim/thread_pool.hpp"

namespace papisim::probe {

LoopResult replay_loop(const sim::MachineConfig& cfg,
                       const std::vector<StreamSpec>& streams,
                       std::uint64_t iterations, bool sw_prefetch) {
  sim::Machine m(cfg);
  m.set_noise_enabled(false);
  m.set_active_cores(0, 1);

  sim::LoopDesc loop;
  loop.iterations = iterations;
  loop.sw_prefetch = sw_prefetch;
  for (const StreamSpec& s : streams) {
    const std::uint64_t span =
        iterations * static_cast<std::uint64_t>(s.stride < 0 ? -s.stride
                                                             : s.stride) +
        s.elem;
    const std::uint64_t base = m.address_space().allocate(span);
    loop.streams.push_back({base, s.stride, s.elem, s.kind});
  }

  LoopResult r;
  r.stats = m.engine(0, 0).execute(loop);
  m.flush_socket(0);
  r.read_bytes_total = m.memctrl(0).total_bytes(sim::MemDir::Read);
  r.write_bytes_total = m.memctrl(0).total_bytes(sim::MemDir::Write);
  r.channels = m.memctrl(0).snapshot();
  return r;
}

SweepResult replay_multicore_sweep(const sim::MachineConfig& cfg,
                                   std::uint32_t active_cores,
                                   std::uint64_t footprint_bytes,
                                   std::int64_t stride, std::uint32_t passes,
                                   std::uint32_t host_threads) {
  sim::Machine m(cfg);
  m.set_noise_enabled(false);
  m.set_active_cores(0, active_cores);

  // Disjoint per-core buffers, allocated before the fan-out so the layout is
  // independent of worker interleaving (the determinism contract).
  const std::uint64_t abs_stride =
      static_cast<std::uint64_t>(stride < 0 ? -stride : stride);
  const std::uint64_t iterations = footprint_bytes / abs_stride;
  std::vector<std::uint64_t> bases(active_cores);
  for (std::uint32_t c = 0; c < active_cores; ++c) {
    bases[c] = m.address_space().allocate(footprint_bytes + cfg.line_bytes);
  }

  SweepResult r;
  r.pass_read_bytes.assign(active_cores,
                           std::vector<std::uint64_t>(passes, 0));

  for (std::uint32_t c = 0; c < active_cores; ++c) {
    m.engine(0, c).set_deferred_time(true);
  }
  const std::uint32_t workers =
      host_threads == 0 ? 0 : std::min(host_threads, active_cores) - 1;
  sim::ThreadPool pool(workers);
  std::atomic<std::uint64_t> touches{0};
  pool.parallel_for(active_cores, [&](std::uint32_t c) {
    sim::LoopDesc loop;
    loop.iterations = iterations;
    loop.streams = {{bases[c], stride, 8, sim::AccessKind::Load}};
    std::uint64_t local_touches = 0;
    for (std::uint32_t p = 0; p < passes; ++p) {
      const sim::LoopStats st = m.engine(0, c).execute(loop);
      r.pass_read_bytes[c][p] = st.mem_read_bytes;
      local_touches += st.line_touches;
    }
    touches.fetch_add(local_touches, std::memory_order_relaxed);
  });
  double max_ns = 0.0;
  for (std::uint32_t c = 0; c < active_cores; ++c) {
    max_ns = std::max(max_ns, m.engine(0, c).take_deferred_time_ns());
    m.engine(0, c).set_deferred_time(false);
  }
  m.advance(max_ns);
  m.flush_socket(0);

  r.line_touches = touches.load(std::memory_order_relaxed);
  r.channels = m.memctrl(0).snapshot();
  return r;
}

}  // namespace papisim::probe
