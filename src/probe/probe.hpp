// CounterPoint-style refutation probes: every micro-architectural mechanism
// the simulator's policy code encodes (and the paper's figure shapes rely on)
// is expressed as a falsifiable experiment.  A probe sweeps synthetic access
// patterns over a (stride x footprint x R/W density x core-occupancy) grid,
// derives the analytically expected memory traffic for each point, replays
// the pattern through AccessEngine/L3Fabric/MemController, and reports a
// CONFIRM/REFUTE verdict with an effect size and tolerance band -- so a
// future perf refactor (sampled replay, region memoization) that silently
// changes a policy is flagged by the suite, not discovered in a figure.
//
// The six probed mechanisms (DESIGN.md §3f):
//   write_allocate_bypass   dense streaming stores skip the allocate read
//   l3_victim_borrow        a lone core spills into idle cores' slices
//   prefetch_amplification  dcbtst turns store targets into read traffic
//   capacity_spill          re-read traffic knees at the slice capacity
//   channel_stripe          line interleave spreads (or camps) MBA channels
//   rw_asymmetry            write-allocate makes reads scale with density
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hpp"

namespace papisim::probe {

enum class Verdict : std::uint8_t { Confirm, Refute, Inconclusive };

const char* to_string(Verdict v);

/// One grid point: an analytic expectation with a tolerance band and the
/// measured value the replay produced.
struct ProbePoint {
  std::string label;     ///< human-readable grid coordinates
  std::string unit;      ///< "bytes", "ratio", "share"
  double expected = 0;   ///< analytic expectation
  double lo = 0, hi = 0; ///< tolerance band (absolute, in `unit`)
  double measured = 0;
  bool pass = false;
};

/// Verdict for one mechanism over its grid sweep.
///
/// The effect size is the mechanism's *contrast*: the measured difference
/// between an arm where the mechanism must fire and an arm where it must
/// not, in units where the analytic model predicts `expected_effect`.  A
/// broken policy drives the effect toward zero (or past the band), which is
/// what separates "mechanism absent" (REFUTE) from "mechanism present but
/// mis-calibrated" (points fail, effect in band -> INCONCLUSIVE).
struct MechanismReport {
  std::string mechanism;
  std::string description;
  Verdict verdict = Verdict::Inconclusive;
  double effect_size = 0;
  double expected_effect = 0;
  double min_effect = 0;  ///< below this the mechanism is considered absent
  std::vector<ProbePoint> points;
  std::uint64_t line_touches = 0;  ///< replay cost of this mechanism's sweep
  double wall_ms = 0;              ///< host wall time of the sweep
};

/// Axes of the probe grid.  Footprints are per stream, in bytes; densities
/// are load streams per store stream; occupancies are simultaneously active
/// (and replaying) cores.  Each mechanism sweeps the axes that matter to it.
struct GridAxes {
  std::vector<std::int64_t> strides;
  std::vector<double> footprint_slices;  ///< footprint as a fraction of slice
  std::vector<std::uint32_t> densities;
  std::vector<std::uint32_t> occupancies;
};

struct ProbeOptions {
  /// Policy under test.  Probes copy the *policy* knobs (store bypass,
  /// lateral cast-out, retention, stream-detect threshold, channel
  /// interleave) onto a small fixed probe geometry; the base geometry only
  /// matters through those knobs.
  sim::MachineConfig machine = sim::MachineConfig::summit();
  bool full_grid = false;          ///< full sweep vs curated tier-1 sub-grid
  std::uint32_t host_threads = 1;  ///< workers driving multi-core probe arms
};

/// The probe machine: small deterministic geometry carrying cfg's policy
/// knobs (exposed so tests can reason about slice sizes and channels).
sim::MachineConfig probe_machine(const sim::MachineConfig& base);

/// Grid for the current options (curated unless full_grid).
GridAxes probe_grid(const ProbeOptions& opt);

MechanismReport probe_write_allocate_bypass(const ProbeOptions& opt);
MechanismReport probe_l3_victim_borrow(const ProbeOptions& opt);
MechanismReport probe_prefetch_amplification(const ProbeOptions& opt);
MechanismReport probe_capacity_spill(const ProbeOptions& opt);
MechanismReport probe_channel_stripe(const ProbeOptions& opt);
MechanismReport probe_rw_asymmetry(const ProbeOptions& opt);

/// All six mechanisms, in a fixed order.
std::vector<MechanismReport> run_all_probes(const ProbeOptions& opt);

}  // namespace papisim::probe
