// Probe report emission: an aligned text summary for humans and a
// machine-readable JSON mechanism report (the `papisim-probe` CLI contract,
// also parsed by CI).  All strings pass through the shared json_escape.
#pragma once

#include <ostream>
#include <span>

#include "probe/probe.hpp"

namespace papisim::probe {

/// Aligned text table: one row per mechanism plus a failing-point detail
/// block for anything not confirmed.
void write_probe_text(std::ostream& os, std::span<const MechanismReport> reports);

/// JSON document:
///   {"papisim_probe": 1, "machine": ..., "grid": "curated"|"full",
///    "mechanisms": [{mechanism, description, verdict, effect_size,
///                    expected_effect, min_effect, line_touches, wall_ms,
///                    points: [{label, unit, expected, lo, hi, measured,
///                              pass}]}],
///    "summary": {"confirmed": n, "refuted": n, "inconclusive": n}}
void write_probe_json(std::ostream& os, std::span<const MechanismReport> reports,
                      const ProbeOptions& opt);

/// True when every mechanism's verdict is Confirm (the CLI exit status).
bool all_confirmed(std::span<const MechanismReport> reports);

}  // namespace papisim::probe
