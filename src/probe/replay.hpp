// Probe replay primitives: deterministic single-loop and multi-core sweep
// replays on a fresh probe machine, returning exact per-access traffic (and
// the per-channel nest snapshot) for comparison against analytic
// expectations.  Shared by the mechanism probes, the probe property tests,
// and the serial-vs-parallel determinism test.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/access_engine.hpp"
#include "sim/config.hpp"

namespace papisim::probe {

/// A stream of the probe loop, positioned by the replay helper (bases are
/// allocated disjointly per stream, 4 KiB aligned -- aligned to the channel
/// interleave period, which the channel-stripe probe relies on).
struct StreamSpec {
  std::int64_t stride = 8;
  std::uint32_t elem = 8;
  sim::AccessKind kind = sim::AccessKind::Load;
};

/// Traffic of one replayed loop, measured both per access (LoopStats) and at
/// the memory controller after a full cache flush.
struct LoopResult {
  sim::LoopStats stats;                 ///< per-access accounting of the loop
  std::uint64_t read_bytes_total = 0;   ///< memctrl READ after flush
  std::uint64_t write_bytes_total = 0;  ///< memctrl WRITE after flush
  std::vector<std::array<std::uint64_t, 2>> channels;  ///< [ch][read,write]
};

/// Replay one loop on core 0 of a fresh noise-off machine and flush.
LoopResult replay_loop(const sim::MachineConfig& cfg,
                       const std::vector<StreamSpec>& streams,
                       std::uint64_t iterations, bool sw_prefetch = false);

/// A multi-pass sequential sweep replayed on `active_cores` cores at once
/// (disjoint per-core buffers, one pool worker per core), the probe analogue
/// of the paper's occupancy experiments.  Per-core per-pass read bytes are
/// exact (counted per access), so core 0's pass-2 traffic isolates the
/// victim-borrow / capacity-spill signal.
struct SweepResult {
  /// [core][pass] -> demand read bytes of that pass.
  std::vector<std::vector<std::uint64_t>> pass_read_bytes;
  std::uint64_t line_touches = 0;
  std::vector<std::array<std::uint64_t, 2>> channels;  ///< after flush
};

SweepResult replay_multicore_sweep(const sim::MachineConfig& cfg,
                                   std::uint32_t active_cores,
                                   std::uint64_t footprint_bytes,
                                   std::int64_t stride, std::uint32_t passes,
                                   std::uint32_t host_threads);

}  // namespace papisim::probe
