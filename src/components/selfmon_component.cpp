#include "components/selfmon_component.hpp"

namespace papisim::components {

namespace {

constexpr std::string_view kSumSuffix = ".sum_ns";

std::string_view strip_sum_suffix(std::string_view native, bool& is_sum) {
  is_sum = native.size() > kSumSuffix.size() &&
           native.substr(native.size() - kSumSuffix.size()) == kSumSuffix;
  return is_sum ? native.substr(0, native.size() - kSumSuffix.size()) : native;
}

}  // namespace

struct SelfmonComponent::State : ControlState {
  std::vector<Resolved> events;
  /// Start snapshot (counters and histogram windows are "since start").
  selfmon::Snapshot start;
};

std::optional<SelfmonComponent::Resolved> SelfmonComponent::resolve(
    std::string_view native) {
  for (std::size_t c = 0; c < selfmon::kNumCounters; ++c) {
    const auto id = static_cast<selfmon::CounterId>(c);
    if (native == selfmon::counter_info(id).name) {
      return Resolved{Kind::Counter, static_cast<std::uint16_t>(c)};
    }
  }
  for (std::size_t g = 0; g < selfmon::kNumGauges; ++g) {
    const auto id = static_cast<selfmon::GaugeId>(g);
    if (native == selfmon::gauge_info(id).name) {
      return Resolved{Kind::Gauge, static_cast<std::uint16_t>(g)};
    }
  }
  bool is_sum = false;
  const std::string_view base = strip_sum_suffix(native, is_sum);
  for (std::size_t h = 0; h < selfmon::kNumHists; ++h) {
    const auto id = static_cast<selfmon::HistId>(h);
    if (base == selfmon::hist_info(id).name) {
      return Resolved{is_sum ? Kind::HistSum : Kind::Hist,
                      static_cast<std::uint16_t>(h)};
    }
  }
  return std::nullopt;
}

std::vector<EventInfo> SelfmonComponent::events() const {
  std::vector<EventInfo> out;
  for (std::size_t c = 0; c < selfmon::kNumCounters; ++c) {
    const selfmon::MetricInfo& mi =
        selfmon::counter_info(static_cast<selfmon::CounterId>(c));
    out.push_back({"selfmon:::" + std::string(mi.name),
                   std::string(mi.description), std::string(mi.units), false});
  }
  for (std::size_t g = 0; g < selfmon::kNumGauges; ++g) {
    const selfmon::MetricInfo& mi =
        selfmon::gauge_info(static_cast<selfmon::GaugeId>(g));
    out.push_back({"selfmon:::" + std::string(mi.name),
                   std::string(mi.description), std::string(mi.units), true});
  }
  for (std::size_t h = 0; h < selfmon::kNumHists; ++h) {
    const selfmon::MetricInfo& mi =
        selfmon::hist_info(static_cast<selfmon::HistId>(h));
    out.push_back({"selfmon:::" + std::string(mi.name),
                   std::string(mi.description) +
                       " (histogram: read = samples, percentiles via "
                       "read_percentile)",
                   "samples", false});
    out.push_back({"selfmon:::" + std::string(mi.name) + std::string(kSumSuffix),
                   std::string(mi.description) + " (summed latency)",
                   std::string(mi.units), false});
  }
  return out;
}

bool SelfmonComponent::knows_event(std::string_view native) const {
  return resolve(native).has_value();
}

bool SelfmonComponent::is_instantaneous(std::string_view native) const {
  const auto r = resolve(native);
  return r.has_value() && r->kind == Kind::Gauge;
}

EventKind SelfmonComponent::event_kind(std::string_view native) const {
  const auto r = resolve(native);
  if (!r) return EventKind::Counter;
  switch (r->kind) {
    case Kind::Gauge: return EventKind::Gauge;
    case Kind::Hist: return EventKind::Histogram;
    case Kind::Counter:
    case Kind::HistSum: return EventKind::Counter;
  }
  return EventKind::Counter;
}

std::unique_ptr<ControlState> SelfmonComponent::create_state() {
  return std::make_unique<State>();
}

void SelfmonComponent::add_event(ControlState& state, std::string_view native) {
  const auto r = resolve(native);
  if (!r) {
    throw Error(Status::NoEvent,
                "selfmon: unknown event '" + std::string(native) + "'");
  }
  static_cast<State&>(state).events.push_back(*r);
}

std::size_t SelfmonComponent::num_events(const ControlState& state) const {
  return static_cast<const State&>(state).events.size();
}

void SelfmonComponent::start(ControlState& state) {
  static_cast<State&>(state).start = selfmon::snapshot();
}

void SelfmonComponent::stop(ControlState& /*state*/) {}

void SelfmonComponent::read(ControlState& state, std::span<long long> out) {
  auto& st = static_cast<State&>(state);
  const selfmon::Snapshot now = selfmon::snapshot();
  for (std::size_t i = 0; i < st.events.size(); ++i) {
    const Resolved& r = st.events[i];
    switch (r.kind) {
      case Kind::Counter:
        out[i] = static_cast<long long>(now.counters[r.id] -
                                        st.start.counters[r.id]);
        break;
      case Kind::Gauge:
        out[i] = static_cast<long long>(now.gauges[r.id]);
        break;
      case Kind::Hist:
        out[i] = static_cast<long long>(now.hists[r.id].count -
                                        st.start.hists[r.id].count);
        break;
      case Kind::HistSum:
        out[i] = static_cast<long long>(now.hists[r.id].sum_ns -
                                        st.start.hists[r.id].sum_ns);
        break;
    }
  }
}

void SelfmonComponent::reset(ControlState& state) { start(state); }

double SelfmonComponent::read_percentile(ControlState& state,
                                         std::string_view native, double q) {
  const auto r = resolve(native);
  if (!r || r->kind != Kind::Hist) {
    return Component::read_percentile(state, native, q);  // throws
  }
  auto& st = static_cast<State&>(state);
  const selfmon::Snapshot now = selfmon::snapshot();
  return now.hists[r->id].since(st.start.hists[r->id]).percentile(q);
}

}  // namespace papisim::components
