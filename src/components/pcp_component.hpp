// PCP component: nest memory-traffic events for unprivileged users, fetched
// through the PMCD daemon (the paper's central subject).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "pcp/client.hpp"

namespace papisim::components {

/// Event name grammar (as on Summit):
///   pcp:::perfevent.hwcounters.nest_mba<ch>_imc.PM_MBA<ch>_<READ|WRITE>_BYTES
///        .value:cpu<N>
/// The ":cpu<N>" instance qualifier picks the hardware thread whose socket's
/// nest is read (the paper uses cpu87 / cpu175 for sockets 0 / 1).
///
/// Resilience (DESIGN.md "PCP fault model"):
///  * Every pmFetch is deadline-bounded and retried by the client layer; if
///    retries exhaust (daemon down, persistent faults), the component does
///    NOT throw from inside a sampling loop -- it freezes its counter values
///    and reports itself disabled through disabled_reason(), exactly as a
///    PAPI component that lost its backend would.
///  * A PMCD crash-restart re-baselines the daemon's counters near zero.
///    The component detects the new FetchReply::generation, carries the
///    progress observed before the crash into an accumulator, and clamps
///    the per-read delta so a counter that restarted below the start
///    snapshot can never produce a huge wrapped value.  Traffic between the
///    last successful fetch and the crash is lost (documented deviation).
///  * Sustained overload (Status::Overloaded after bounded retry) degrades
///    *softly*: disabled_reason() reports the shedding, values freeze, but
///    read() keeps re-probing and automatically re-enables the component the
///    moment the daemon accepts a fetch again.  Backpressure is a transient
///    condition; only terminal failures (shutdown, persistent faults) leave
///    the component disabled for good.
class PcpComponent : public Component {
 public:
  explicit PcpComponent(pcp::PcpClient& client);

  std::string name() const override { return "pcp"; }
  std::string description() const override {
    return "Performance Co-Pilot metrics via the PMCD daemon; exposes nest "
           "memory-traffic counters to unprivileged users";
  }

  /// Empty while healthy; the terminal fetch failure once the client layer
  /// has exhausted its retries (graceful degradation instead of throwing).
  std::string disabled_reason() const override { return disabled_reason_; }

  std::vector<EventInfo> events() const override;
  bool knows_event(std::string_view native) const override;

  std::unique_ptr<ControlState> create_state() override;
  void add_event(ControlState& state, std::string_view native) override;
  std::size_t num_events(const ControlState& state) const override;
  void start(ControlState& state) override;
  void stop(ControlState& state) override;
  void read(ControlState& state, std::span<long long> out) override;
  void reset(ControlState& state) override;

  std::uint64_t fetches() const { return fetches_; }

 private:
  struct State;
  struct Resolved {
    pcp::PmId pmid = 0;
    std::uint32_t cpu = 0;
  };

  /// Parse "<metric>.value:cpu<N>"; nullopt if malformed or unknown.
  std::optional<Resolved> resolve(std::string_view native) const;

  /// One pmFetch round-trip per distinct cpu instance in the state.
  /// False (with disabled_reason_ set) when the client layer exhausted its
  /// retries; `generation_out` gets the newest daemon incarnation seen.
  /// @throws Error(Status::Internal) on malformed replies (short value
  /// vector) and on in-band fetch errors (unknown pmid, bad instance).
  bool fetch_all(State& st, std::vector<std::uint64_t>& out,
                 std::uint64_t* generation_out);

  /// @throws Error(Status::ComponentDisabled) once degraded.
  void require_usable() const;

  pcp::PcpClient& client_;
  std::map<std::string, pcp::PmId, std::less<>> metrics_;  ///< PMNS cache
  std::uint32_t max_cpu_;
  std::uint64_t fetches_ = 0;
  std::string disabled_reason_;
  /// True when disabled_reason_ records overload shedding: read() keeps
  /// probing and clears the reason on the first accepted fetch (auto
  /// re-enable after backpressure lifts).
  bool degraded_overload_ = false;
};

}  // namespace papisim::components
