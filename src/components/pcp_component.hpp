// PCP component: nest memory-traffic events for unprivileged users, fetched
// through the PMCD daemon (the paper's central subject).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "pcp/client.hpp"

namespace papisim::components {

/// Event name grammar (as on Summit):
///   pcp:::perfevent.hwcounters.nest_mba<ch>_imc.PM_MBA<ch>_<READ|WRITE>_BYTES
///        .value:cpu<N>
/// The ":cpu<N>" instance qualifier picks the hardware thread whose socket's
/// nest is read (the paper uses cpu87 / cpu175 for sockets 0 / 1).
class PcpComponent : public Component {
 public:
  explicit PcpComponent(pcp::PcpClient& client);

  std::string name() const override { return "pcp"; }
  std::string description() const override {
    return "Performance Co-Pilot metrics via the PMCD daemon; exposes nest "
           "memory-traffic counters to unprivileged users";
  }

  std::vector<EventInfo> events() const override;
  bool knows_event(std::string_view native) const override;

  std::unique_ptr<ControlState> create_state() override;
  void add_event(ControlState& state, std::string_view native) override;
  std::size_t num_events(const ControlState& state) const override;
  void start(ControlState& state) override;
  void stop(ControlState& state) override;
  void read(ControlState& state, std::span<long long> out) override;
  void reset(ControlState& state) override;

  std::uint64_t fetches() const { return fetches_; }

 private:
  struct State;
  struct Resolved {
    pcp::PmId pmid = 0;
    std::uint32_t cpu = 0;
  };

  /// Parse "<metric>.value:cpu<N>"; nullopt if malformed or unknown.
  std::optional<Resolved> resolve(std::string_view native) const;

  /// One pmFetch round-trip per distinct cpu instance in the state.
  void fetch_all(State& st, std::vector<std::uint64_t>& out);

  pcp::PcpClient& client_;
  std::map<std::string, pcp::PmId, std::less<>> metrics_;  ///< PMNS cache
  std::uint32_t max_cpu_;
  std::uint64_t fetches_ = 0;
};

}  // namespace papisim::components
