#include "components/cpu_component.hpp"

#include <charconv>

namespace papisim::components {

namespace {

struct PresetName {
  const char* name;
  const char* description;
  const char* units;
};

constexpr PresetName kPresets[] = {
    {"PAPI_TOT_CYC", "Busy cycles of the core", "cycles"},
    {"PAPI_TOT_INS", "Instructions completed (synthetic estimate)", "instructions"},
    {"PAPI_FP_OPS", "Floating-point operations retired", "flops"},
    {"PAPI_L3_TCA", "L3 total accesses (line touches)", "accesses"},
    {"PAPI_L3_TCH", "L3 total hits (slice or lateral cast-out)", "hits"},
    {"PAPI_L3_TCM", "L3 total misses (to memory)", "misses"},
};

bool parse_u32_qualifier(std::string_view& native, std::string_view key,
                         std::uint32_t& out) {
  const std::size_t pos = native.rfind(key);
  if (pos == std::string_view::npos) return true;  // absent: keep default
  const std::string_view num = native.substr(pos + key.size());
  const char* end = num.data() + num.size();
  auto [p, ec] = std::from_chars(num.data(), end, out);
  if (ec != std::errc{} || p != end) return false;
  native = native.substr(0, pos);
  return true;
}

}  // namespace

struct CpuComponent::State : ControlState {
  std::vector<Resolved> events;
  std::vector<std::uint64_t> start_snapshot;
};

std::vector<EventInfo> CpuComponent::events() const {
  std::vector<EventInfo> out;
  for (const PresetName& p : kPresets) {
    EventInfo info;
    info.name = std::string("cpu:::") + p.name;
    info.description = std::string(p.description) +
                       " (qualifiers :socket=<s>, :core=<c>; default 0/0)";
    info.units = p.units;
    out.push_back(std::move(info));
  }
  return out;
}

std::optional<CpuComponent::Resolved> CpuComponent::resolve(
    std::string_view native) const {
  Resolved r;
  // Qualifiers may appear in either order; core= must be stripped first
  // because "socket=" is a suffix-match too.
  if (!parse_u32_qualifier(native, ":core=", r.core)) return std::nullopt;
  if (!parse_u32_qualifier(native, ":socket=", r.socket)) return std::nullopt;
  if (r.socket >= machine_.sockets() || r.core >= machine_.cores_per_socket()) {
    return std::nullopt;
  }
  for (std::size_t i = 0; i < std::size(kPresets); ++i) {
    if (native == kPresets[i].name) {
      r.preset = static_cast<Preset>(i);
      return r;
    }
  }
  return std::nullopt;
}

bool CpuComponent::knows_event(std::string_view native) const {
  return resolve(native).has_value();
}

std::uint64_t CpuComponent::read_counter(const Resolved& r) const {
  const sim::CoreCounters& c = machine_.engine(r.socket, r.core).counters();
  switch (r.preset) {
    case Preset::TotCyc:
      return static_cast<std::uint64_t>(c.busy_ns * 1e-9 *
                                        machine_.config().core_freq_hz);
    case Preset::TotIns: return c.instructions();
    case Preset::FpOps: return c.flops;
    case Preset::L3Tca: return c.line_touches;
    case Preset::L3Tch: return c.l3_hits + c.victim_hits;
    case Preset::L3Tcm: return c.l3_misses();
  }
  return 0;
}

std::unique_ptr<ControlState> CpuComponent::create_state() {
  return std::make_unique<State>();
}

void CpuComponent::add_event(ControlState& state, std::string_view native) {
  const auto r = resolve(native);
  if (!r) {
    throw Error(Status::NoEvent, "cpu: unknown event '" + std::string(native) + "'");
  }
  auto& st = static_cast<State&>(state);
  st.events.push_back(*r);
  st.start_snapshot.push_back(0);
}

std::size_t CpuComponent::num_events(const ControlState& state) const {
  return static_cast<const State&>(state).events.size();
}

void CpuComponent::start(ControlState& state) {
  auto& st = static_cast<State&>(state);
  for (std::size_t i = 0; i < st.events.size(); ++i) {
    st.start_snapshot[i] = read_counter(st.events[i]);
  }
}

void CpuComponent::stop(ControlState& /*state*/) {}

void CpuComponent::read(ControlState& state, std::span<long long> out) {
  auto& st = static_cast<State&>(state);
  for (std::size_t i = 0; i < st.events.size(); ++i) {
    out[i] = static_cast<long long>(read_counter(st.events[i]) -
                                    st.start_snapshot[i]);
  }
}

void CpuComponent::reset(ControlState& state) { start(state); }

}  // namespace papisim::components
