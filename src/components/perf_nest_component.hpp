// Direct (privileged) nest-counter component: the "perf_uncore" path used on
// the Tellico testbed, where elevated privileges allow PAPI to read the nest
// IMC counters without PCP.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/component.hpp"
#include "nest/nest_pmu.hpp"
#include "sim/machine.hpp"

namespace papisim::components {

class PerfNestComponent : public Component {
 public:
  /// Attempts to open the nest PMU with `creds`.  Without privileges the
  /// component registers in the DISABLED state (as real PAPI does when
  /// perf_event returns EPERM for uncore PMUs) rather than failing init.
  PerfNestComponent(sim::Machine& machine, sim::Credentials creds);

  std::string name() const override { return "perf_nest"; }
  std::string description() const override {
    return "IBM POWER9 nest (uncore) memory-traffic counters via direct "
           "perf_event access; requires elevated privileges";
  }
  std::string disabled_reason() const override { return disabled_reason_; }

  std::vector<EventInfo> events() const override;
  bool knows_event(std::string_view native) const override;

  std::unique_ptr<ControlState> create_state() override;
  void add_event(ControlState& state, std::string_view native) override;
  std::size_t num_events(const ControlState& state) const override;
  void start(ControlState& state) override;
  void stop(ControlState& state) override;
  void read(ControlState& state, std::span<long long> out) override;
  void reset(ControlState& state) override;

 private:
  struct State;

  sim::Machine& machine_;
  std::optional<nest::NestPmu> pmu_;
  std::string disabled_reason_;
};

}  // namespace papisim::components
