#include "components/infiniband_component.hpp"

#include <charconv>

namespace papisim::components {

struct InfinibandComponent::State : ControlState {
  std::vector<Resolved> events;
  std::vector<std::uint64_t> start_snapshot;
};

std::vector<EventInfo> InfinibandComponent::events() const {
  std::vector<EventInfo> out;
  for (const net::Nic* nic : nics_) {
    for (std::uint32_t port = 1; port <= nic->ports(); ++port) {
      for (const char* dir : {"recv", "xmit"}) {
        EventInfo info;
        info.name = "infiniband:::" + nic->name() + "_" + std::to_string(port) +
                    "_ext:port_" + dir + "_data";
        info.description = std::string("Bytes ") +
                           (dir[0] == 'r' ? "received" : "transmitted") +
                           " on the port (extended counter)";
        info.units = "bytes";
        out.push_back(std::move(info));
      }
    }
  }
  return out;
}

std::optional<InfinibandComponent::Resolved> InfinibandComponent::resolve(
    std::string_view native) const {
  // "<hca>_<port>_ext:port_<recv|xmit>_data"
  Resolved r;
  if (native.ends_with(":port_recv_data")) {
    r.recv = true;
    native.remove_suffix(15);
  } else if (native.ends_with(":port_xmit_data")) {
    r.recv = false;
    native.remove_suffix(15);
  } else {
    return std::nullopt;
  }
  if (!native.ends_with("_ext")) return std::nullopt;
  native.remove_suffix(4);
  const std::size_t us = native.rfind('_');
  if (us == std::string_view::npos || us + 1 >= native.size()) return std::nullopt;
  const std::string_view port_str = native.substr(us + 1);
  const char* end = port_str.data() + port_str.size();
  auto [p, ec] = std::from_chars(port_str.data(), end, r.port);
  if (ec != std::errc{} || p != end || r.port == 0) return std::nullopt;
  const std::string_view hca = native.substr(0, us);
  for (const net::Nic* nic : nics_) {
    if (nic->name() == hca && r.port <= nic->ports()) {
      r.nic = nic;
      return r;
    }
  }
  return std::nullopt;
}

bool InfinibandComponent::knows_event(std::string_view native) const {
  return resolve(native).has_value();
}

std::unique_ptr<ControlState> InfinibandComponent::create_state() {
  return std::make_unique<State>();
}

void InfinibandComponent::add_event(ControlState& state, std::string_view native) {
  const auto r = resolve(native);
  if (!r) {
    throw Error(Status::NoEvent,
                "infiniband: unknown event '" + std::string(native) + "'");
  }
  auto& st = static_cast<State&>(state);
  st.events.push_back(*r);
  st.start_snapshot.push_back(0);
}

std::size_t InfinibandComponent::num_events(const ControlState& state) const {
  return static_cast<const State&>(state).events.size();
}

void InfinibandComponent::start(ControlState& state) {
  auto& st = static_cast<State&>(state);
  for (std::size_t i = 0; i < st.events.size(); ++i) {
    const Resolved& r = st.events[i];
    st.start_snapshot[i] = r.recv ? r.nic->recv_bytes(r.port) : r.nic->xmit_bytes(r.port);
  }
}

void InfinibandComponent::stop(ControlState& /*state*/) {}

void InfinibandComponent::read(ControlState& state, std::span<long long> out) {
  auto& st = static_cast<State&>(state);
  for (std::size_t i = 0; i < st.events.size(); ++i) {
    const Resolved& r = st.events[i];
    const std::uint64_t now =
        r.recv ? r.nic->recv_bytes(r.port) : r.nic->xmit_bytes(r.port);
    out[i] = static_cast<long long>(now - st.start_snapshot[i]);
  }
}

void InfinibandComponent::reset(ControlState& state) {
  auto& st = static_cast<State&>(state);
  for (std::size_t i = 0; i < st.events.size(); ++i) {
    const Resolved& r = st.events[i];
    st.start_snapshot[i] = r.recv ? r.nic->recv_bytes(r.port) : r.nic->xmit_bytes(r.port);
  }
}

}  // namespace papisim::components
