#include "components/pcp_component.hpp"

#include <charconv>

namespace papisim::components {

struct PcpComponent::State : ControlState {
  std::vector<Resolved> events;
  std::vector<std::uint64_t> start_snapshot;
};

PcpComponent::PcpComponent(pcp::PcpClient& client)
    : client_(client), max_cpu_(client.machine().config().usable_cpus()) {
  // Traverse the PMNS once and cache name -> pmid (pmLookupName round trips).
  for (const std::string& name : client_.names_under("")) {
    if (const auto pmid = client_.lookup(name)) metrics_.emplace(name, *pmid);
  }
}

std::vector<EventInfo> PcpComponent::events() const {
  std::vector<EventInfo> out;
  out.reserve(metrics_.size());
  for (const auto& [name, pmid] : metrics_) {
    EventInfo info;
    info.name = "pcp:::" + name + ".value";
    info.description =
        "PCP metric via PMCD (append :cpu<N> to select the socket instance)";
    info.units = name.find("_REQS") != std::string::npos ? "count" : "bytes";
    out.push_back(std::move(info));
  }
  return out;
}

std::optional<PcpComponent::Resolved> PcpComponent::resolve(
    std::string_view native) const {
  Resolved r;
  // Optional trailing ":cpu<N>" instance qualifier.
  const std::size_t colon = native.rfind(":cpu");
  if (colon != std::string_view::npos) {
    const std::string_view num = native.substr(colon + 4);
    const char* end = num.data() + num.size();
    auto [p, ec] = std::from_chars(num.data(), end, r.cpu);
    if (ec != std::errc{} || p != end) return std::nullopt;
    if (r.cpu >= max_cpu_) return std::nullopt;
    native = native.substr(0, colon);
  }
  // Mandatory ".value" leaf.
  constexpr std::string_view kLeaf = ".value";
  if (native.size() <= kLeaf.size() || !native.ends_with(kLeaf)) return std::nullopt;
  native.remove_suffix(kLeaf.size());

  const auto it = metrics_.find(native);
  if (it == metrics_.end()) return std::nullopt;
  r.pmid = it->second;
  return r;
}

bool PcpComponent::knows_event(std::string_view native) const {
  return resolve(native).has_value();
}

std::unique_ptr<ControlState> PcpComponent::create_state() {
  return std::make_unique<State>();
}

void PcpComponent::add_event(ControlState& state, std::string_view native) {
  const auto r = resolve(native);
  if (!r) {
    throw Error(Status::NoEvent, "pcp: unknown event '" + std::string(native) + "'");
  }
  auto& st = static_cast<State&>(state);
  st.events.push_back(*r);
  st.start_snapshot.push_back(0);
}

std::size_t PcpComponent::num_events(const ControlState& state) const {
  return static_cast<const State&>(state).events.size();
}

void PcpComponent::fetch_all(State& st, std::vector<std::uint64_t>& out) {
  out.assign(st.events.size(), 0);
  // Group events by cpu instance: one pmFetch round trip per distinct cpu.
  std::vector<bool> done(st.events.size(), false);
  for (std::size_t i = 0; i < st.events.size(); ++i) {
    if (done[i]) continue;
    const std::uint32_t cpu = st.events[i].cpu;
    std::vector<pcp::PmId> ids;
    std::vector<std::size_t> slots;
    for (std::size_t j = i; j < st.events.size(); ++j) {
      if (!done[j] && st.events[j].cpu == cpu) {
        ids.push_back(st.events[j].pmid);
        slots.push_back(j);
        done[j] = true;
      }
    }
    ++fetches_;
    const pcp::FetchReply reply = client_.fetch(ids, cpu);
    if (!reply.ok) {
      throw Error(Status::Internal, "pcp: pmFetch failed: " + reply.error);
    }
    for (std::size_t k = 0; k < slots.size(); ++k) out[slots[k]] = reply.values[k];
  }
}

void PcpComponent::start(ControlState& state) {
  auto& st = static_cast<State&>(state);
  fetch_all(st, st.start_snapshot);
  for (std::uint32_t s = 0; s < client_.machine().sockets(); ++s) {
    client_.machine().noise(s).measurement_overhead();
  }
}

void PcpComponent::stop(ControlState& /*state*/) {}

void PcpComponent::read(ControlState& state, std::span<long long> out) {
  auto& st = static_cast<State&>(state);
  std::vector<std::uint64_t> now;
  fetch_all(st, now);
  for (std::size_t i = 0; i < st.events.size(); ++i) {
    out[i] = static_cast<long long>(now[i] - st.start_snapshot[i]);
  }
}

void PcpComponent::reset(ControlState& state) {
  auto& st = static_cast<State&>(state);
  fetch_all(st, st.start_snapshot);
}

}  // namespace papisim::components
