#include "components/pcp_component.hpp"

#include <charconv>
#include <limits>

namespace papisim::components {

struct PcpComponent::State : ControlState {
  std::vector<Resolved> events;
  std::vector<std::uint64_t> start_snapshot;
  std::vector<std::uint64_t> last_seen;  ///< last successfully fetched values
  std::vector<long long> accum;  ///< progress carried across daemon restarts
  std::uint64_t generation = 0;  ///< daemon incarnation of start_snapshot
};

namespace {

/// Delta of a monotonic counter against its start snapshot, clamped so a
/// counter that re-baselined below the snapshot (daemon restart) yields 0
/// rather than a wrapped huge positive value.
long long clamped_delta(std::uint64_t now, std::uint64_t start) {
  if (now < start) return 0;
  const std::uint64_t d = now - start;
  constexpr auto kMax =
      static_cast<std::uint64_t>(std::numeric_limits<long long>::max());
  return d > kMax ? std::numeric_limits<long long>::max()
                  : static_cast<long long>(d);
}

}  // namespace

PcpComponent::PcpComponent(pcp::PcpClient& client)
    : client_(client), max_cpu_(client.machine().config().usable_cpus()) {
  // Traverse the PMNS once and cache name -> pmid (pmLookupName round trips).
  // A daemon that is already unreachable degrades the component instead of
  // failing construction.
  try {
    for (const std::string& name : client_.names_under("")) {
      if (const auto pmid = client_.lookup(name)) metrics_.emplace(name, *pmid);
    }
  } catch (const Error& e) {
    disabled_reason_ = std::string("pcp: PMNS traversal failed: ") + e.what();
    metrics_.clear();
  }
}

std::vector<EventInfo> PcpComponent::events() const {
  std::vector<EventInfo> out;
  out.reserve(metrics_.size());
  for (const auto& [name, pmid] : metrics_) {
    EventInfo info;
    info.name = "pcp:::" + name + ".value";
    info.description =
        "PCP metric via PMCD (append :cpu<N> to select the socket instance)";
    info.units = name.find("_REQS") != std::string::npos ? "count" : "bytes";
    out.push_back(std::move(info));
  }
  return out;
}

std::optional<PcpComponent::Resolved> PcpComponent::resolve(
    std::string_view native) const {
  Resolved r;
  // Optional trailing ":cpu<N>" instance qualifier.
  const std::size_t colon = native.rfind(":cpu");
  if (colon != std::string_view::npos) {
    const std::string_view num = native.substr(colon + 4);
    const char* end = num.data() + num.size();
    auto [p, ec] = std::from_chars(num.data(), end, r.cpu);
    if (ec != std::errc{} || p != end) return std::nullopt;
    if (r.cpu >= max_cpu_) return std::nullopt;
    native = native.substr(0, colon);
  }
  // Mandatory ".value" leaf.
  constexpr std::string_view kLeaf = ".value";
  if (native.size() <= kLeaf.size() || !native.ends_with(kLeaf)) return std::nullopt;
  native.remove_suffix(kLeaf.size());

  const auto it = metrics_.find(native);
  if (it == metrics_.end()) return std::nullopt;
  r.pmid = it->second;
  return r;
}

bool PcpComponent::knows_event(std::string_view native) const {
  return resolve(native).has_value();
}

std::unique_ptr<ControlState> PcpComponent::create_state() {
  return std::make_unique<State>();
}

void PcpComponent::add_event(ControlState& state, std::string_view native) {
  const auto r = resolve(native);
  if (!r) {
    throw Error(Status::NoEvent, "pcp: unknown event '" + std::string(native) + "'");
  }
  auto& st = static_cast<State&>(state);
  st.events.push_back(*r);
  st.start_snapshot.push_back(0);
  st.last_seen.push_back(0);
  st.accum.push_back(0);
}

std::size_t PcpComponent::num_events(const ControlState& state) const {
  return static_cast<const State&>(state).events.size();
}

void PcpComponent::require_usable() const {
  if (!disabled_reason_.empty()) {
    throw Error(Status::ComponentDisabled, "pcp: disabled: " + disabled_reason_);
  }
}

bool PcpComponent::fetch_all(State& st, std::vector<std::uint64_t>& out,
                             std::uint64_t* generation_out) {
  out.assign(st.events.size(), 0);
  std::uint64_t gen = st.generation;
  // Group events by cpu instance: one pmFetch round trip per distinct cpu.
  std::vector<bool> done(st.events.size(), false);
  for (std::size_t i = 0; i < st.events.size(); ++i) {
    if (done[i]) continue;
    const std::uint32_t cpu = st.events[i].cpu;
    std::vector<pcp::PmId> ids;
    std::vector<std::size_t> slots;
    for (std::size_t j = i; j < st.events.size(); ++j) {
      if (!done[j] && st.events[j].cpu == cpu) {
        ids.push_back(st.events[j].pmid);
        slots.push_back(j);
        done[j] = true;
      }
    }
    ++fetches_;
    pcp::FetchReply reply;
    try {
      reply = client_.fetch(ids, cpu);
    } catch (const Error& e) {
      // The client layer already retried with backoff; a typed error here is
      // terminal (daemon down or persistently faulting).  Degrade instead of
      // throwing from inside the caller's sampling loop.
      disabled_reason_ =
          std::string("pmFetch failed after retries (") +
          papisim::to_string(e.status()) + "): " + e.what();
      degraded_overload_ = e.status() == Status::Overloaded;
      return false;
    }
    if (!reply.ok) {
      throw Error(Status::Internal, "pcp: pmFetch failed: " + reply.error);
    }
    if (reply.values.size() != ids.size()) {
      throw Error(Status::Internal,
                  "pcp: malformed pmFetch reply: " +
                      std::to_string(reply.values.size()) + " values for " +
                      std::to_string(ids.size()) + " pmids");
    }
    gen = std::max(gen, reply.generation);
    for (std::size_t k = 0; k < slots.size(); ++k) out[slots[k]] = reply.values[k];
  }
  if (generation_out != nullptr) *generation_out = gen;
  return true;
}

void PcpComponent::start(ControlState& state) {
  require_usable();
  auto& st = static_cast<State&>(state);
  std::uint64_t gen = st.generation;
  if (!fetch_all(st, st.start_snapshot, &gen)) require_usable();
  st.last_seen = st.start_snapshot;
  st.accum.assign(st.events.size(), 0);
  st.generation = gen;
  for (std::uint32_t s = 0; s < client_.machine().sockets(); ++s) {
    client_.machine().noise(s).measurement_overhead();
  }
}

void PcpComponent::stop(ControlState& /*state*/) {}

void PcpComponent::read(ControlState& state, std::span<long long> out) {
  auto& st = static_cast<State&>(state);
  // Overload is soft degradation: keep probing so the component re-enables
  // itself once the daemon stops shedding.  Other failures stay terminal.
  if (disabled_reason_.empty() || degraded_overload_) {
    std::vector<std::uint64_t> now;
    std::uint64_t gen = st.generation;
    if (fetch_all(st, now, &gen)) {
      disabled_reason_.clear();
      degraded_overload_ = false;
      if (gen != st.generation) {
        // The daemon crash-restarted between fetches: its counters restart
        // near zero.  Bank the progress observed before the crash and
        // re-baseline the snapshot at the new incarnation's origin.
        for (std::size_t i = 0; i < st.events.size(); ++i) {
          st.accum[i] += clamped_delta(st.last_seen[i], st.start_snapshot[i]);
          st.start_snapshot[i] = 0;
        }
        st.generation = gen;
      }
      st.last_seen = now;
    }
  }
  // Healthy: accum + delta since start.  Degraded: the same expression over
  // the last successful fetch -- values freeze, the sampling loop keeps
  // running, and availability is reported through disabled_reason().
  for (std::size_t i = 0; i < st.events.size(); ++i) {
    out[i] = st.accum[i] + clamped_delta(st.last_seen[i], st.start_snapshot[i]);
  }
}

void PcpComponent::reset(ControlState& state) {
  require_usable();
  auto& st = static_cast<State&>(state);
  std::uint64_t gen = st.generation;
  if (!fetch_all(st, st.start_snapshot, &gen)) require_usable();
  st.last_seen = st.start_snapshot;
  st.accum.assign(st.events.size(), 0);
  st.generation = gen;
}

}  // namespace papisim::components
