// Infiniband component: extended port byte counters of the HCAs.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/component.hpp"
#include "net/nic.hpp"

namespace papisim::components {

/// Event name grammar (as PAPI's infiniband component forms it):
///   infiniband:::<hca>_<port>_ext:port_recv_data
///   infiniband:::<hca>_<port>_ext:port_xmit_data
/// e.g. "infiniband:::mlx5_0_1_ext:port_recv_data".
class InfinibandComponent : public Component {
 public:
  explicit InfinibandComponent(std::vector<net::Nic*> nics) : nics_(std::move(nics)) {}

  std::string name() const override { return "infiniband"; }
  std::string description() const override {
    return "Mellanox HCA extended port counters (bytes received/transmitted)";
  }

  std::vector<EventInfo> events() const override;
  bool knows_event(std::string_view native) const override;

  std::unique_ptr<ControlState> create_state() override;
  void add_event(ControlState& state, std::string_view native) override;
  std::size_t num_events(const ControlState& state) const override;
  void start(ControlState& state) override;
  void stop(ControlState& state) override;
  void read(ControlState& state, std::span<long long> out) override;
  void reset(ControlState& state) override;

 private:
  struct Resolved {
    const net::Nic* nic = nullptr;
    std::uint32_t port = 1;
    bool recv = true;
  };
  struct State;

  std::optional<Resolved> resolve(std::string_view native) const;

  std::vector<net::Nic*> nics_;
};

}  // namespace papisim::components
