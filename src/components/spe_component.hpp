// SPE component: the precise-event sampling engine (src/spe) exposed through
// the same multi-component API as the hardware-domain components.  The
// per-sample payload stays in the collector's rings (drained by the
// hot-footprint analysis); what the component carries is the sampling
// *accounting* -- how many samples were taken, how many were dropped under
// backpressure, how many accesses the samplers observed -- so a Sampler
// timeline can plot sample and drop rates next to pcp/nest columns, and the
// configured period rides along as a gauge.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/component.hpp"
#include "spe/collector.hpp"

namespace papisim::components {

/// Event name grammar:
///   spe:::samples    counter  samples recorded into the rings since start
///   spe:::drops      counter  samples rejected by a full ring since start
///   spe:::accesses   counter  line touches observed by attached samplers
///   spe:::period     gauge    configured mean accesses-per-sample (1-in-N)
/// The component registers as disabled when the instrumentation was compiled
/// out (-DPAPISIM_SPE=OFF), mirroring PAPI's disabled_reason.  Without an
/// attached collector every event reads 0.
class SpeComponent : public Component {
 public:
  explicit SpeComponent(spe::SpeCollector* collector = nullptr)
      : collector_(collector) {}

  /// Swap the backing collector (nullptr detaches).  Event sets keep
  /// working; counters report deltas against their start() snapshot, so
  /// re-start after swapping to avoid mixing collectors' totals.
  void set_collector(spe::SpeCollector* collector) { collector_ = collector; }
  spe::SpeCollector* collector() const { return collector_; }

  std::string name() const override { return "spe"; }
  std::string description() const override {
    return "Precise-event sampling accounting: per-access sample/drop/"
           "access totals and the configured 1-in-N period";
  }
  std::string disabled_reason() const override {
    return spe::kEnabled
               ? std::string{}
               : "spe sampling compiled out (PAPISIM_SPE=OFF)";
  }

  std::vector<EventInfo> events() const override;
  bool knows_event(std::string_view native) const override;
  bool is_instantaneous(std::string_view native) const override;

  std::unique_ptr<ControlState> create_state() override;
  void add_event(ControlState& state, std::string_view native) override;
  std::size_t num_events(const ControlState& state) const override;
  void start(ControlState& state) override;
  void stop(ControlState& state) override;
  void read(ControlState& state, std::span<long long> out) override;
  void reset(ControlState& state) override;

 private:
  enum class Which : std::uint8_t { Samples, Drops, Accesses, Period };
  struct State;

  static std::optional<Which> resolve(std::string_view native);
  spe::SpeCollector::Totals totals() const {
    return collector_ != nullptr ? collector_->totals()
                                 : spe::SpeCollector::Totals{};
  }

  spe::SpeCollector* collector_ = nullptr;

  friend struct State;
};

}  // namespace papisim::components
