// Selfmon component: the simulator's own runtime metrics (replay-pool
// dispatch latency, L3 stripe contention, PMCD round trips, sampler and
// runner overhead) exposed through the same multi-component API as the
// hardware-domain components -- the paper's mechanism pointed back at the
// harness itself, so a Profiler/RegionProfiler run can carry "cost of
// measuring" columns next to the pcp/nvml/infiniband ones.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/component.hpp"
#include "selfmon/metrics.hpp"

namespace papisim::components {

/// Event name grammar (all names live in selfmon::{counter,gauge,hist}_info):
///   selfmon:::pool.tasks              counter   (delta since start)
///   selfmon:::pcp.queue_depth         gauge     (instantaneous)
///   selfmon:::pcp.fetch_rtt_ns        histogram (read = samples since start;
///                                     percentiles via read_percentile)
///   selfmon:::pcp.fetch_rtt_ns.sum_ns counter   (summed latency, for means)
/// The component registers as disabled when the instrumentation was compiled
/// out (-DPAPISIM_SELFMON=OFF), mirroring PAPI's disabled_reason.
class SelfmonComponent : public Component {
 public:
  SelfmonComponent() = default;

  std::string name() const override { return "selfmon"; }
  std::string description() const override {
    return "Harness self-monitoring: replay-pool, L3-stripe, PMCD and "
           "sampler runtime metrics (profile the profiler)";
  }
  std::string disabled_reason() const override {
    return selfmon::kEnabled
               ? std::string{}
               : "selfmon instrumentation compiled out (PAPISIM_SELFMON=OFF)";
  }

  std::vector<EventInfo> events() const override;
  bool knows_event(std::string_view native) const override;
  bool is_instantaneous(std::string_view native) const override;
  EventKind event_kind(std::string_view native) const override;

  std::unique_ptr<ControlState> create_state() override;
  void add_event(ControlState& state, std::string_view native) override;
  std::size_t num_events(const ControlState& state) const override;
  void start(ControlState& state) override;
  void stop(ControlState& state) override;
  void read(ControlState& state, std::span<long long> out) override;
  void reset(ControlState& state) override;
  double read_percentile(ControlState& state, std::string_view native,
                         double q) override;

 private:
  enum class Kind : std::uint8_t { Counter, Gauge, Hist, HistSum };
  struct Resolved {
    Kind kind = Kind::Counter;
    std::uint16_t id = 0;  ///< index into the matching selfmon enum
  };
  struct State;

  static std::optional<Resolved> resolve(std::string_view native);

  friend struct State;
};

}  // namespace papisim::components
