// CPU component: per-core activity counters (cycles, instructions, flops,
// L3 behaviour) in PAPI preset-event style.  An extension beyond the paper's
// nest focus, supporting its future-work goal of monitoring additional
// event categories through the same API.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/component.hpp"
#include "sim/machine.hpp"

namespace papisim::components {

/// Event name grammar (PAPI preset names with socket/core qualifiers):
///   cpu:::PAPI_TOT_CYC[:socket=<s>][:core=<c>]
///   cpu:::PAPI_TOT_INS / PAPI_FP_OPS / PAPI_L3_TCA / PAPI_L3_TCH /
///   PAPI_L3_TCM
/// Unqualified names default to socket 0, core 0.
class CpuComponent : public Component {
 public:
  explicit CpuComponent(sim::Machine& machine) : machine_(machine) {}

  std::string name() const override { return "cpu"; }
  std::string description() const override {
    return "Per-core activity counters (cycles, instructions, flops, L3 "
           "accesses/hits/misses)";
  }

  std::vector<EventInfo> events() const override;
  bool knows_event(std::string_view native) const override;

  std::unique_ptr<ControlState> create_state() override;
  void add_event(ControlState& state, std::string_view native) override;
  std::size_t num_events(const ControlState& state) const override;
  void start(ControlState& state) override;
  void stop(ControlState& state) override;
  void read(ControlState& state, std::span<long long> out) override;
  void reset(ControlState& state) override;

 private:
  enum class Preset : std::uint8_t {
    TotCyc,
    TotIns,
    FpOps,
    L3Tca,  ///< total L3 accesses (line touches)
    L3Tch,  ///< L3 hits (local slice or lateral cast-out recovery)
    L3Tcm,  ///< L3 misses (to memory)
  };
  struct Resolved {
    Preset preset = Preset::TotCyc;
    std::uint32_t socket = 0;
    std::uint32_t core = 0;
  };
  struct State;

  std::optional<Resolved> resolve(std::string_view native) const;
  std::uint64_t read_counter(const Resolved& r) const;

  sim::Machine& machine_;
};

}  // namespace papisim::components
