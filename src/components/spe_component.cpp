#include "components/spe_component.hpp"

namespace papisim::components {

namespace {

struct EventDesc {
  std::string_view name;
  std::string_view description;
  std::string_view units;
  bool instantaneous;
};

/// Index order matches SpeComponent::Which.
constexpr EventDesc kSpeEvents[] = {
    {"samples", "precise-event samples recorded into per-core rings",
     "samples", false},
    {"drops", "samples dropped by a full per-core ring (backpressure)",
     "samples", false},
    {"accesses", "line touches observed by attached samplers", "accesses",
     false},
    {"period", "configured mean accesses per sample (1-in-N)", "accesses",
     true},
};

}  // namespace

struct SpeComponent::State : ControlState {
  std::vector<Which> events;
  /// Start snapshot: counters report deltas against it.
  spe::SpeCollector::Totals start;
};

std::optional<SpeComponent::Which> SpeComponent::resolve(
    std::string_view native) {
  for (std::size_t i = 0; i < std::size(kSpeEvents); ++i) {
    if (native == kSpeEvents[i].name) return static_cast<Which>(i);
  }
  return std::nullopt;
}

std::vector<EventInfo> SpeComponent::events() const {
  std::vector<EventInfo> out;
  for (const EventDesc& e : kSpeEvents) {
    out.push_back({"spe:::" + std::string(e.name), std::string(e.description),
                   std::string(e.units), e.instantaneous});
  }
  return out;
}

bool SpeComponent::knows_event(std::string_view native) const {
  return resolve(native).has_value();
}
bool SpeComponent::is_instantaneous(std::string_view native) const {
  const auto w = resolve(native);
  return w.has_value() && *w == Which::Period;
}

std::unique_ptr<ControlState> SpeComponent::create_state() {
  return std::make_unique<State>();
}

void SpeComponent::add_event(ControlState& state, std::string_view native) {
  const auto w = resolve(native);
  if (!w) {
    throw Error(Status::NoEvent,
                "spe: unknown event '" + std::string(native) + "'");
  }
  static_cast<State&>(state).events.push_back(*w);
}

std::size_t SpeComponent::num_events(const ControlState& state) const {
  return static_cast<const State&>(state).events.size();
}

void SpeComponent::start(ControlState& state) {
  static_cast<State&>(state).start = totals();
}

void SpeComponent::stop(ControlState& /*state*/) {}

void SpeComponent::read(ControlState& state, std::span<long long> out) {
  auto& st = static_cast<State&>(state);
  const spe::SpeCollector::Totals now = totals();
  for (std::size_t i = 0; i < st.events.size(); ++i) {
    switch (st.events[i]) {
      case Which::Samples:
        out[i] = static_cast<long long>(now.samples - st.start.samples);
        break;
      case Which::Drops:
        out[i] = static_cast<long long>(now.drops - st.start.drops);
        break;
      case Which::Accesses:
        out[i] = static_cast<long long>(now.accesses - st.start.accesses);
        break;
      case Which::Period:
        out[i] = collector_ != nullptr
                     ? static_cast<long long>(collector_->period())
                     : 0;
        break;
    }
  }
}

void SpeComponent::reset(ControlState& state) { start(state); }

}  // namespace papisim::components
