#include "components/perf_nest_component.hpp"

namespace papisim::components {

struct PerfNestComponent::State : ControlState {
  std::vector<nest::NestEventId> events;
  std::vector<std::uint64_t> start_snapshot;
  bool running = false;
};

PerfNestComponent::PerfNestComponent(sim::Machine& machine, sim::Credentials creds)
    : machine_(machine) {
  try {
    pmu_.emplace(machine, creds);
  } catch (const nest::PermissionError& e) {
    disabled_reason_ = e.what();
  }
}

std::vector<EventInfo> PerfNestComponent::events() const {
  std::vector<EventInfo> out;
  for (const std::string& n : nest::NestPmu::enumerate(machine_.config())) {
    EventInfo info;
    info.name = n;  // bare perf-style names, as PAPI shows them
    info.description = "Nest MBA channel memory traffic (qualifier :cpu=N "
                       "selects the socket of hardware thread N)";
    info.units = n.find("_REQS") != std::string::npos ? "count" : "bytes";
    out.push_back(std::move(info));
  }
  return out;
}

bool PerfNestComponent::knows_event(std::string_view native) const {
  return nest::NestPmu::parse_perf_event(native, machine_.config()).has_value();
}

std::unique_ptr<ControlState> PerfNestComponent::create_state() {
  return std::make_unique<State>();
}

void PerfNestComponent::add_event(ControlState& state, std::string_view native) {
  if (!available()) {
    throw Error(Status::ComponentDisabled, "perf_nest: " + disabled_reason_);
  }
  const auto id = nest::NestPmu::parse_perf_event(native, machine_.config());
  if (!id) {
    throw Error(Status::NoEvent, "perf_nest: unknown event '" + std::string(native) + "'");
  }
  auto& st = static_cast<State&>(state);
  st.events.push_back(*id);
  st.start_snapshot.push_back(0);
}

std::size_t PerfNestComponent::num_events(const ControlState& state) const {
  return static_cast<const State&>(state).events.size();
}

void PerfNestComponent::start(ControlState& state) {
  auto& st = static_cast<State&>(state);
  st.running = true;
  for (std::size_t i = 0; i < st.events.size(); ++i) {
    st.start_snapshot[i] = pmu_->read(st.events[i]);
  }
  // Instrumentation around the start itself perturbs the counters; the
  // sockets being measured observe it (amortized by repetitions, Eq. 5).
  for (std::uint32_t s = 0; s < machine_.sockets(); ++s) {
    machine_.noise(s).measurement_overhead();
  }
}

void PerfNestComponent::stop(ControlState& state) {
  static_cast<State&>(state).running = false;
}

void PerfNestComponent::read(ControlState& state, std::span<long long> out) {
  auto& st = static_cast<State&>(state);
  for (std::size_t i = 0; i < st.events.size(); ++i) {
    out[i] = static_cast<long long>(pmu_->read(st.events[i]) - st.start_snapshot[i]);
  }
}

void PerfNestComponent::reset(ControlState& state) {
  auto& st = static_cast<State&>(state);
  for (std::size_t i = 0; i < st.events.size(); ++i) {
    st.start_snapshot[i] = pmu_->read(st.events[i]);
  }
}

}  // namespace papisim::components
