#include "components/nvml_component.hpp"

namespace papisim::components {

struct NvmlComponent::State : ControlState {
  std::vector<const gpu::GpuDevice*> devices;
};

std::string NvmlComponent::event_name_for(const gpu::GpuDevice& d) const {
  return d.model() + ":device_" + std::to_string(d.id()) + ":power";
}

const gpu::GpuDevice* NvmlComponent::device_for(std::string_view native) const {
  for (const gpu::GpuDevice* d : devices_) {
    if (event_name_for(*d) == native) return d;
  }
  return nullptr;
}

std::vector<EventInfo> NvmlComponent::events() const {
  std::vector<EventInfo> out;
  out.reserve(devices_.size());
  for (const gpu::GpuDevice* d : devices_) {
    EventInfo info;
    info.name = "nvml:::" + event_name_for(*d);
    info.description = "Instantaneous board power draw";
    info.units = "mW";
    info.instantaneous = true;
    out.push_back(std::move(info));
  }
  return out;
}

bool NvmlComponent::knows_event(std::string_view native) const {
  return device_for(native) != nullptr;
}

bool NvmlComponent::is_instantaneous(std::string_view native) const {
  return knows_event(native);
}

std::unique_ptr<ControlState> NvmlComponent::create_state() {
  return std::make_unique<State>();
}

void NvmlComponent::add_event(ControlState& state, std::string_view native) {
  const gpu::GpuDevice* d = device_for(native);
  if (d == nullptr) {
    throw Error(Status::NoEvent, "nvml: unknown event '" + std::string(native) + "'");
  }
  static_cast<State&>(state).devices.push_back(d);
}

std::size_t NvmlComponent::num_events(const ControlState& state) const {
  return static_cast<const State&>(state).devices.size();
}

void NvmlComponent::start(ControlState& /*state*/) {}
void NvmlComponent::stop(ControlState& /*state*/) {}
void NvmlComponent::reset(ControlState& /*state*/) {}

void NvmlComponent::read(ControlState& state, std::span<long long> out) {
  auto& st = static_cast<State&>(state);
  for (std::size_t i = 0; i < st.devices.size(); ++i) {
    out[i] = static_cast<long long>(st.devices[i]->power_mw());
  }
}

}  // namespace papisim::components
