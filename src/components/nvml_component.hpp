// NVML component: instantaneous GPU board power (gauge, milliwatts).
#pragma once

#include <memory>
#include <vector>

#include "core/component.hpp"
#include "gpu/gpu_device.hpp"

namespace papisim::components {

/// Event name grammar (as PAPI's nvml component forms it):
///   nvml:::<model>:device_<i>:power        e.g.
///   nvml:::Tesla_V100-SXM2-16GB:device_0:power
class NvmlComponent : public Component {
 public:
  explicit NvmlComponent(std::vector<gpu::GpuDevice*> devices)
      : devices_(std::move(devices)) {}

  std::string name() const override { return "nvml"; }
  std::string description() const override {
    return "NVIDIA Management Library: GPU power (mW), instantaneous";
  }

  std::vector<EventInfo> events() const override;
  bool knows_event(std::string_view native) const override;
  bool is_instantaneous(std::string_view native) const override;

  std::unique_ptr<ControlState> create_state() override;
  void add_event(ControlState& state, std::string_view native) override;
  std::size_t num_events(const ControlState& state) const override;
  void start(ControlState& state) override;
  void stop(ControlState& state) override;
  void read(ControlState& state, std::span<long long> out) override;
  void reset(ControlState& state) override;

 private:
  struct State;

  std::string event_name_for(const gpu::GpuDevice& d) const;
  const gpu::GpuDevice* device_for(std::string_view native) const;

  std::vector<gpu::GpuDevice*> devices_;
};

}  // namespace papisim::components
