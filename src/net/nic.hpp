// Mellanox-class NIC model with per-port extended byte counters
// (Infiniband component substrate).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace papisim::net {

struct NicConfig {
  std::string name = "mlx5_0";
  std::uint32_t ports = 1;                      ///< 1-based port numbering
  double link_bw_bytes_per_sec = 12.5e9;        ///< EDR 100 Gb/s
  double latency_ns = 1.3e3;
};

/// One HCA.  Counters mirror the extended port counters PAPI's infiniband
/// component reads (port_recv_data / port_xmit_data); we account bytes
/// directly (the sysfs counters count 4-byte words, which PAPI rescales).
class Nic {
 public:
  explicit Nic(NicConfig cfg) : cfg_(std::move(cfg)), counters_(cfg_.ports * 2, 0) {}

  const std::string& name() const { return cfg_.name; }
  const NicConfig& config() const { return cfg_; }
  std::uint32_t ports() const { return cfg_.ports; }

  void on_recv(std::uint64_t bytes, std::uint32_t port = 1) {
    counters_[index(port, 0)] += bytes;
  }
  void on_xmit(std::uint64_t bytes, std::uint32_t port = 1) {
    counters_[index(port, 1)] += bytes;
  }

  std::uint64_t recv_bytes(std::uint32_t port = 1) const { return counters_[index(port, 0)]; }
  std::uint64_t xmit_bytes(std::uint32_t port = 1) const { return counters_[index(port, 1)]; }

  /// Wire time for a message of `bytes` (used by the job communicator).
  double transfer_time_ns(std::uint64_t bytes) const {
    return cfg_.latency_ns + static_cast<double>(bytes) / cfg_.link_bw_bytes_per_sec * 1e9;
  }

 private:
  std::size_t index(std::uint32_t port, std::uint32_t dir) const {
    if (port == 0 || port > cfg_.ports) {
      throw std::out_of_range("Nic: port " + std::to_string(port) + " out of range");
    }
    return (port - 1) * 2 + dir;
  }

  NicConfig cfg_;
  std::vector<std::uint64_t> counters_;
};

}  // namespace papisim::net
